// Package dtaint is a from-scratch reproduction of "DTaint: Detecting the
// Taint-Style Vulnerability in Embedded Device Firmware" (Cheng et al.,
// DSN 2018): a static binary analysis that finds taint-style
// vulnerabilities (buffer overflows, command injections) in Linux-based
// firmware without source code and without emulation.
//
// The analysis pipeline is the paper's: firmware container unpacking,
// lifting to an architecture-neutral IR, per-function static symbolic
// analysis producing definition pairs over "base + offset" memory
// expressions, pointer-alias recognition (Algorithm 1), indirect-call
// resolution through data-structure layout similarity, bottom-up
// interprocedural data-flow generation (Algorithm 2, every function
// analyzed once), and source→sink path checking against sanitization
// constraints.
//
// Quick start:
//
//	a := dtaint.New()
//	report, err := a.AnalyzeFirmware(imageBytes, "/htdocs/cgibin")
//	if err != nil { ... }
//	for _, v := range report.Vulnerabilities() {
//	    fmt.Println(v)
//	}
//
// Because real vendor firmware requires proprietary images, the module
// also ships a deterministic synthetic-firmware generator mirroring the
// paper's six study images (see GenerateStudyFirmware), so every
// experiment in the paper's evaluation can be regenerated offline.
package dtaint

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/dataflow"
	"dtaint/internal/emul"
	"dtaint/internal/firmware"
	"dtaint/internal/image"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
	"dtaint/internal/vocab"
)

// Class is a vulnerability class.
type Class string

// Vulnerability classes.
const (
	ClassBufferOverflow   Class = "buffer-overflow"
	ClassCommandInjection Class = "command-injection"
	// ClassOffByOne marks a copy whose proven length bound equals the
	// destination capacity exactly: the NUL terminator (or an inclusive
	// `<=` guard) overruns the buffer by a single byte.
	ClassOffByOne Class = "off-by-one"
	// ClassLengthTruncation marks a tainted length narrowed through a
	// 1-byte store: the truncated value defeats any later bound check.
	ClassLengthTruncation Class = "length-truncation"
	// ClassFormatString marks attacker-controlled data reaching the
	// format argument of a printf-family sink.
	ClassFormatString Class = "format-string"
	// ClassPathTraversal marks attacker-controlled data reaching the
	// path argument of a file operation without a '.'-probe.
	ClassPathTraversal Class = "path-traversal"
)

// Finding is one (source, path, sink) tuple discovered by the analysis.
type Finding struct {
	// Class is the vulnerability class implied by the sink.
	Class Class
	// Sink is the sensitive function (Table I) or "loop" for loop copies.
	Sink string
	// SinkFunc is the firmware function containing the sink.
	SinkFunc string
	// SinkAddr is the sink callsite address.
	SinkAddr uint32
	// Source is the attacker-controlled input function.
	Source string
	// Path is the call-chain from the sink function up to where the taint
	// enters, innermost first.
	Path []string
	// Sanitized reports whether a constraint on the tainted data was
	// found; sanitized paths are not vulnerabilities.
	Sanitized bool
	// Evidence is the constraint/interval chain behind the verdict: which
	// proven bound (or absence of one) decided Sanitized and Class.
	Evidence []string
}

// CWE returns the finding's Common Weakness Enumeration identifier:
// CWE-121 (stack-based buffer overflow), CWE-78 (OS command injection),
// CWE-193 (off-by-one error), CWE-197 (numeric truncation error),
// CWE-134 (externally-controlled format string), or CWE-22 (path
// traversal).
func (f Finding) CWE() string {
	switch f.Class {
	case ClassCommandInjection:
		return "CWE-78"
	case ClassOffByOne:
		return "CWE-193"
	case ClassLengthTruncation:
		return "CWE-197"
	case ClassFormatString:
		return "CWE-134"
	case ClassPathTraversal:
		return "CWE-22"
	}
	return "CWE-121"
}

// String renders the finding as a one-line report.
func (f Finding) String() string {
	state := "VULNERABLE"
	if f.Sanitized {
		state = "sanitized"
	}
	return fmt.Sprintf("[%s] %s -> %s in %s@%#x (%s) via %s",
		state, f.Source, f.Sink, f.SinkFunc, f.SinkAddr, f.Class,
		strings.Join(f.Path, " <- "))
}

// Report is the result of analyzing one firmware binary.
type Report struct {
	// Binary is the analyzed executable's name.
	Binary string
	// Arch is the executable's architecture flavor ("ARM" or "MIPS").
	Arch string
	// Functions, Blocks, and CallEdges summarize the recovered program
	// (the Table II columns).
	Functions int
	Blocks    int
	CallEdges int
	// FunctionsAnalyzed is the size of the analyzed subset.
	FunctionsAnalyzed int
	// SinkCount is the number of static sensitive-sink sites.
	SinkCount int
	// IndirectResolved counts indirect calls bound by layout similarity.
	IndirectResolved int
	// DefPairs is the total number of definition pairs in the generated
	// data flow (a size measure of the DDG).
	DefPairs int
	// Truncated counts functions whose symbolic exploration hit the state
	// budget (their summaries are partial; raise WithStateBudget if > 0).
	Truncated int
	// SSATime and DDGTime are the two analysis phases' durations
	// (the Table VII columns).
	SSATime time.Duration
	DDGTime time.Duration
	// DDGWorkers, SCCComponents, and CriticalPath describe the parallel
	// bottom-up phase: the worker count its SCC-DAG scheduler ran with,
	// the number of call-graph components scheduled, and the longest
	// chain of dependent components (the parallelism ceiling).
	DDGWorkers    int
	SCCComponents int
	CriticalPath  int
	// Runtime snapshots the Go runtime (heap, goroutines, GC) at the
	// moment the analysis finished.
	Runtime RuntimeStats
	// Findings are all discovered source→sink paths, including sanitized
	// ones.
	Findings []Finding
}

// VulnerablePaths returns the unsanitized findings (the paper's
// "vulnerable paths").
func (r *Report) VulnerablePaths() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Sanitized {
			out = append(out, f)
		}
	}
	return out
}

// Vulnerabilities deduplicates vulnerable paths by sink location: several
// paths may reach the same weak sink.
func (r *Report) Vulnerabilities() []Finding {
	seen := make(map[string]bool)
	var out []Finding
	for _, f := range r.Findings {
		if f.Sanitized {
			continue
		}
		// Same key helper as the internal Result, so the public and
		// internal vulnerability counts cannot diverge.
		key := taint.VulnKey(f.SinkFunc, f.Sink, f.SinkAddr, string(f.Class))
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	return out
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithFunctionFilter restricts the analysis to functions for which keep
// returns true (the paper restricts the large camera binaries to their
// network modules).
func WithFunctionFilter(keep func(name string) bool) Option {
	return func(a *Analyzer) { a.opts.Filter = keep }
}

// WithoutAliasAnalysis disables pointer-alias recognition (Algorithm 1) —
// an ablation switch.
func WithoutAliasAnalysis() Option {
	return func(a *Analyzer) { a.opts.DisableAlias = true }
}

// WithoutStructSimilarity disables indirect-call resolution through
// data-structure layout similarity — an ablation switch.
func WithoutStructSimilarity() Option {
	return func(a *Analyzer) { a.opts.DisableStructSim = true }
}

// WithoutSSE disables structured symbolic expressions — an ablation
// switch. Pointer-alias rewriting falls back to the paper's pairwise
// Algorithm 1 and indirect calls are resolved by data-structure layout
// similarity alone instead of from SSE equivalence classes.
func WithoutSSE() Option {
	return func(a *Analyzer) { a.opts.DisableSSE = true }
}

// WithoutValueRange disables the interval value-range domain — an
// ablation switch. Sink verdicts fall back to the purely structural
// constraint checks: off-by-one and length-truncation findings disappear
// and interval-proven-safe copies are reported again. Path discovery is
// unaffected.
func WithoutValueRange() Option {
	return func(a *Analyzer) { a.opts.DisableVRange = true }
}

// WithStateBudget caps the symbolic states explored per function.
func WithStateBudget(perBlock, perFunction int) Option {
	return func(a *Analyzer) {
		a.opts.Symexec.MaxStatesPerBlock = perBlock
		a.opts.Symexec.MaxStatesPerFunc = perFunction
	}
}

// WithLoopUnrolling replaces the paper's loop-once heuristic with bounded
// unrolling of iters iterations — an ablation switch.
func WithLoopUnrolling(iters int) Option {
	return func(a *Analyzer) {
		a.opts.Symexec.LoopOnce = false
		a.opts.Symexec.MaxLoopIters = iters
	}
}

// WithParallelism sets the worker count for both analysis phases
// (0 = GOMAXPROCS): the per-function phase fans out over independent
// functions, and the bottom-up interprocedural phase schedules SCC
// components of the condensed call graph as their callees complete.
// Results are identical for every worker count.
func WithParallelism(workers int) Option {
	return func(a *Analyzer) { a.opts.Parallelism = workers }
}

// WithSummaryStore attaches a shared function-summary store: each
// analyzed function's summary is keyed by a fingerprint of its bytes,
// its ISA, and the analysis-options version, and looked up before
// symbolic execution. Across analyses of binaries that share code, each
// unique function is executed once. Results are bit-identical with and
// without the store.
func WithSummaryStore(store *SummaryStore) Option {
	return func(a *Analyzer) { a.opts.SummaryStore = store.s }
}

// WithBufferSource registers a custom input-source function that fills
// the buffer passed as argument bufArg with attacker-controlled data
// (read/recv-style). Vendor firmware commonly has private input wrappers
// beyond Table I.
func WithBufferSource(name string, bufArg int) Option {
	return func(a *Analyzer) {
		a.opts.ExtraSources = append(a.opts.ExtraSources,
			taint.SourceSpec{Name: name, BufArg: bufArg})
	}
}

// WithReturningSource registers a custom input source that returns a
// pointer to attacker-controlled data (getenv/nvram_get-style).
func WithReturningSource(name string) Option {
	return func(a *Analyzer) {
		a.opts.ExtraSources = append(a.opts.ExtraSources,
			taint.SourceSpec{Name: name, BufArg: -1, ViaReturn: true})
	}
}

// WithSink registers a custom sensitive sink: dataArg is the argument
// whose pointed-to content must not be attacker-controlled; lenArg is the
// copy-bound argument whose constraint counts as sanitization (-1 when
// the check applies to the data itself).
func WithSink(name string, class Class, dataArg, lenArg int) Option {
	return func(a *Analyzer) {
		var c taint.Class
		switch class {
		case ClassCommandInjection:
			c = taint.ClassCommandInjection
		case ClassFormatString:
			c = taint.ClassFormatString
		case ClassPathTraversal:
			c = taint.ClassPathTraversal
		default:
			c = taint.ClassBufferOverflow
		}
		a.opts.ExtraSinks = append(a.opts.ExtraSinks,
			taint.SinkSpec{Name: name, Class: c, DataArg: dataArg, LenArg: lenArg})
	}
}

// Vocabulary is a compiled source/sink/sanitizer vocabulary (see
// internal/vocab for the JSON spec format). The zero value is not
// usable; obtain one from LoadVocabulary, ParseVocabulary, or
// DefaultVocabulary.
type Vocabulary struct {
	v *taint.Vocabulary
}

// LoadVocabulary reads, validates, and compiles a vocabulary spec file.
// Malformed specs are rejected with line/field-precise errors.
func LoadVocabulary(path string) (*Vocabulary, error) {
	spec, err := vocab.Load(path)
	if err != nil {
		return nil, err
	}
	cv, err := taint.CompileVocabulary(spec)
	if err != nil {
		return nil, err
	}
	return &Vocabulary{v: cv}, nil
}

// ParseVocabulary validates and compiles a vocabulary spec from memory;
// name labels the source in error messages.
func ParseVocabulary(data []byte, name string) (*Vocabulary, error) {
	spec, err := vocab.Parse(data, name)
	if err != nil {
		return nil, err
	}
	cv, err := taint.CompileVocabulary(spec)
	if err != nil {
		return nil, err
	}
	return &Vocabulary{v: cv}, nil
}

// DefaultVocabulary returns the embedded default vocabulary (Table I
// plus the NVRAM/printf/file-op extensions).
func DefaultVocabulary() *Vocabulary {
	return &Vocabulary{v: taint.DefaultVocabulary()}
}

// Fingerprint returns the vocabulary's content digest. Identical specs
// share a fingerprint; any semantic edit changes it, which invalidates
// cached summaries and fleet reports keyed on the options fingerprint.
func (v *Vocabulary) Fingerprint() string { return v.v.Fingerprint() }

// SourceNames returns the vocabulary's input-source census.
func (v *Vocabulary) SourceNames() []string { return v.v.SourceNames() }

// SinkNames returns the vocabulary's sensitive-sink census.
func (v *Vocabulary) SinkNames() []string { return v.v.SinkNames() }

// Functions returns the number of modeled functions in the spec.
func (v *Vocabulary) Functions() int { return len(v.v.Spec().Functions) }

// WithVocabulary replaces the embedded default vocabulary: every
// library-call model, the sink census, the type prototypes, and the
// sanitization verdicts follow the given spec. Nil keeps the default.
func WithVocabulary(v *Vocabulary) Option {
	return func(a *Analyzer) {
		if v != nil {
			a.opts.Vocab = v.v
		}
	}
}

// Analyzer runs the DTaint pipeline. The zero value is not usable; call
// New.
type Analyzer struct {
	opts dataflow.Options
	// journal is the live-telemetry event ring attached with
	// WithEventJournal; New wires it into the analysis options.
	journal *events.Journal
}

// New returns an Analyzer with the paper's default configuration.
func New(opts ...Option) *Analyzer {
	a := &Analyzer{}
	a.opts.Symexec.LoopOnce = true
	for _, o := range opts {
		o(a)
	}
	// Wire telemetry after all options have applied, so the result does
	// not depend on the order of WithTracer and WithEventJournal: the
	// journal gets an emitter the analysis emits progress and finding
	// events through, and — when a tracer is attached too — every span
	// start/end is bridged into the journal as a typed event.
	a.opts.Events = a.journal.Emitter("")
	if a.opts.Events != nil {
		events.Bridge(a.opts.Tracer, a.opts.Events)
	}
	return a
}

// Errors returned by the analyzer entry points.
var (
	// ErrNoBinary is returned when the requested executable is not in the
	// firmware's root filesystem.
	ErrNoBinary = errors.New("dtaint: binary not found in firmware root filesystem")
)

// AnalyzeFirmware unpacks a firmware image (scanning for the container at
// any offset, as Binwalk does), extracts its root filesystem, loads the
// executable at binaryPath, and analyzes it. If binaryPath is empty, the
// first executable that parses as a program image is analyzed.
func (a *Analyzer) AnalyzeFirmware(data []byte, binaryPath string) (*Report, error) {
	st := a.opts.StartStage("unpack-firmware", obs.KV("bytes", len(data)))
	_, fs, err := firmware.Unpack(data)
	if err != nil {
		st.End()
		return nil, fmt.Errorf("unpack firmware: %w", err)
	}
	st.End("files", len(fs.Files))
	var raw []byte
	if binaryPath != "" {
		f, err := fs.Lookup(binaryPath)
		if err != nil {
			return nil, fmt.Errorf("%w: %q", ErrNoBinary, binaryPath)
		}
		raw = f.Data
	} else {
		for _, f := range fs.Files {
			if _, err := image.Parse(f.Data); err == nil {
				raw = f.Data
				break
			}
		}
		if raw == nil {
			return nil, ErrNoBinary
		}
	}
	return a.AnalyzeExecutable(raw)
}

// AnalyzeExecutable analyzes a serialized program image (FWELF bytes).
func (a *Analyzer) AnalyzeExecutable(data []byte) (*Report, error) {
	st := a.opts.StartStage("parse-image", obs.KV("bytes", len(data)))
	bin, err := image.Parse(data)
	if err != nil {
		st.End()
		return nil, fmt.Errorf("parse executable: %w", err)
	}
	st.End("binary", bin.Name, "arch", bin.Arch.String())
	return a.analyze(bin)
}

func (a *Analyzer) analyze(bin *image.Binary) (*Report, error) {
	st := a.opts.StartStage("build-cfg", obs.KV("binary", bin.Name))
	prog, err := cfg.Build(bin)
	if err != nil {
		st.End()
		return nil, fmt.Errorf("recover CFG: %w", err)
	}
	cfgStats := prog.Stats()
	st.End("functions", cfgStats.Functions, "blocks", cfgStats.Blocks)
	res, err := dataflow.Analyze(prog, a.opts)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	st2 := prog.Stats()
	rep := &Report{
		Binary:            bin.Name,
		Arch:              bin.Arch.String(),
		Functions:         st2.Functions,
		Blocks:            st2.Blocks,
		CallEdges:         st2.CallGraphEdges,
		FunctionsAnalyzed: res.FunctionsAnalyzed,
		SinkCount:         res.SinkCount,
		IndirectResolved:  len(res.Resolutions),
		DefPairs:          res.DefPairCount,
		Truncated:         res.Truncated,
		SSATime:           res.SSATime,
		DDGTime:           res.DDGTime,
		DDGWorkers:        res.Parallel.Workers,
		SCCComponents:     res.Parallel.Components,
		CriticalPath:      res.Parallel.CriticalPath,
		Runtime:           publicRuntimeStats(obs.CaptureRuntimeStats()),
	}
	for _, f := range res.Findings {
		rep.Findings = append(rep.Findings, publicFinding(f))
	}
	return rep, nil
}

func publicFinding(f taint.Finding) Finding {
	out := Finding{
		Class:     Class(f.Class.String()),
		Sink:      f.Sink,
		SinkFunc:  f.SinkFunc,
		SinkAddr:  f.SinkAddr,
		Source:    f.Source,
		Sanitized: f.Sanitized,
		Evidence:  append([]string(nil), f.Evidence...),
	}
	for _, s := range f.Path {
		out.Path = append(out.Path, s.String())
	}
	return out
}

// Sources returns the attacker-controlled input functions of Table I.
func Sources() []string { return append([]string(nil), taint.Sources...) }

// Sinks returns the security-sensitive sink functions of Table I.
func Sinks() []string { return append([]string(nil), taint.Sinks...) }

// ---------------------------------------------------------------------------
// Synthetic corpus access (the substitute for proprietary vendor firmware).

// StudyImage identifies one of the paper's six study images.
type StudyImage struct {
	Vendor     string
	Product    string
	Version    string
	Binary     string
	BinaryPath string
	Arch       string
}

// StudyImages lists the six firmware images of the paper's Table II.
func StudyImages() []StudyImage {
	var out []StudyImage
	for _, s := range corpus.StudyImages() {
		out = append(out, StudyImage{
			Vendor:     s.Vendor,
			Product:    s.Product,
			Version:    s.Version,
			Binary:     s.BinaryName,
			BinaryPath: corpus.BinaryPathFor(s),
			Arch:       s.Arch.String(),
		})
	}
	return out
}

// GenerateStudyFirmware deterministically generates the named study image
// as a packed firmware container. scale in (0, 1] shrinks the filler code
// (1.0 reproduces the paper's binary sizes; the planted vulnerabilities
// are present at every scale).
func GenerateStudyFirmware(product string, scale float64) ([]byte, error) {
	spec, ok := corpus.SpecByProduct(product)
	if !ok {
		return nil, fmt.Errorf("dtaint: unknown study product %q", product)
	}
	data, _, err := corpus.BuildFirmware(spec, scale)
	return data, err
}

// StudyModuleFilter returns the function filter the paper uses for the
// named product (non-nil only for the two large camera binaries, which
// are restricted to their network modules).
func StudyModuleFilter(product string) func(string) bool {
	spec, ok := corpus.SpecByProduct(product)
	if !ok {
		return nil
	}
	return corpus.ModuleFilter(spec)
}

// GenerateOpenSSL generates the OpenSSL-like executable with the
// Heartbleed weakness (Section II-B) as serialized program-image bytes.
func GenerateOpenSSL(scale float64) ([]byte, error) {
	bin, err := corpus.OpenSSL(scale)
	if err != nil {
		return nil, err
	}
	return bin.Marshal()
}

// EmulationYearStat is one histogram bar of the paper's Figure 1.
type EmulationYearStat struct {
	Year     int
	Total    int
	Emulable int
}

// EmulationStudy reproduces the Section II-A experiment: it boots the
// 6,529-image synthetic population in a FIRMADYNE-like emulation model
// and reports per-release-year success counts (Figure 1).
func EmulationStudy() []EmulationYearStat {
	e := emul.New()
	var out []EmulationYearStat
	for _, st := range e.Study(corpus.Population()) {
		out = append(out, EmulationYearStat{Year: st.Year, Total: st.Total, Emulable: st.Success})
	}
	return out
}

// compile-time interface checks for internal plumbing this package relies
// on staying stable.
var _ symexec.Oracle = (*taint.Tracker)(nil)

package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtaint"
)

func TestStudyBuiltinPopulation(t *testing.T) {
	if err := run(""); err != nil {
		t.Fatal(err)
	}
}

func TestStudyDirectory(t *testing.T) {
	dir := t.TempDir()
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.fwimg"), fw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.fwimg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir); err != nil {
		t.Fatal(err)
	}
}

// The walk must descend into subdirectories: a vendor/product tree with
// images only at the leaves is a valid corpus.
func TestStudyNestedDirectory(t *testing.T) {
	dir := t.TempDir()
	nested := filepath.Join(dir, "dlink", "dir645", "v1.03")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(nested, "fw.fwimg"), fw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-image noise in intermediate directories must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "dlink", "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir); err != nil {
		t.Fatal(err)
	}

	// A tree with no images at any depth is still an error.
	empty := t.TempDir()
	if err := os.MkdirAll(filepath.Join(empty, "sub", "subsub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run(empty); err == nil {
		t.Fatal("image-free tree accepted")
	}
}

func TestStudyErrors(t *testing.T) {
	if err := run("/no/such/dir"); err == nil {
		t.Fatal("missing dir accepted")
	}
	empty := t.TempDir()
	if err := run(empty); err == nil {
		t.Fatal("empty dir accepted")
	}
}

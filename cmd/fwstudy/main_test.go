package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtaint"
)

func TestStudyBuiltinPopulation(t *testing.T) {
	if err := run(""); err != nil {
		t.Fatal(err)
	}
}

func TestStudyDirectory(t *testing.T) {
	dir := t.TempDir()
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.fwimg"), fw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.fwimg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir); err != nil {
		t.Fatal(err)
	}
}

func TestStudyErrors(t *testing.T) {
	if err := run("/no/such/dir"); err == nil {
		t.Fatal("missing dir accepted")
	}
	empty := t.TempDir()
	if err := run(empty); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// Command fwstudy reproduces the paper's Section II-A empirical study
// over a directory of firmware images: how many can be unpacked, and how
// many boot in a FIRMADYNE-style emulator, aggregated by release year
// (Figure 1's measurement, applied to files on disk):
//
//	fwgen -out corpus && fwstudy -dir corpus
//
// The directory is walked recursively, so a corpus organized by
// vendor/product subdirectories (the shape of a real crawl) works
// unchanged; only *.fwimg files are considered. With no -dir, the study
// runs over the built-in 6,529-image synthetic population.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dtaint/internal/corpus"
	"dtaint/internal/emul"
	"dtaint/internal/firmware"
)

func main() {
	dir := flag.String("dir", "", "directory of firmware images (.fwimg); empty = built-in population")
	flag.Parse()
	if err := run(*dir); err != nil {
		fmt.Fprintln(os.Stderr, "fwstudy:", err)
		os.Exit(1)
	}
}

func run(dir string) error {
	e := emul.New()
	if dir == "" {
		fmt.Println("built-in population study:")
		fmt.Print(emul.Summarize(e.Study(corpus.Population())))
		return nil
	}
	// Walk recursively: crawled corpora arrive organized in
	// vendor/product trees, not as one flat directory.
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".fwimg") {
			return nil
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return err
	}
	var images []*firmware.Image
	unpackFails := 0
	for _, path := range paths {
		rel, relErr := filepath.Rel(dir, path)
		if relErr != nil {
			rel = path
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		img, _, err := firmware.Scan(data)
		if err != nil {
			unpackFails++
			fmt.Printf("%-24s unpack failed: %v\n", rel, err)
			continue
		}
		res := e.Boot(img)
		state := "boots"
		if !res.OK {
			state = res.Reason.String()
			if len(res.Missing) > 0 {
				state += fmt.Sprintf(" (%s)", strings.Join(res.Missing, ", "))
			}
		}
		fmt.Printf("%-24s %s %s %s (%d): %s\n", rel,
			img.Header.Vendor, img.Header.Product, img.Header.Version,
			img.Header.Year, state)
		images = append(images, img)
	}
	scanned := len(paths)
	if scanned == 0 {
		return fmt.Errorf("no .fwimg files under %s", dir)
	}
	fmt.Printf("\n%d images scanned, %d failed to unpack\n\n", scanned, unpackFails)
	fmt.Print(emul.Summarize(e.Study(images)))
	return nil
}

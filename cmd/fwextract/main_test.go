package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtaint"
)

func TestExtract(t *testing.T) {
	dir := t.TempDir()
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "fw.fwimg")
	if err := os.WriteFile(in, fw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "rootfs")
	if err := run(in, out, false); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(out, "htdocs", "cgibin")
	if fi, err := os.Stat(bin); err != nil || fi.Size() == 0 {
		t.Fatalf("extracted binary missing: %v", err)
	}
	// List-only mode.
	if err := run(in, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestExtractErrors(t *testing.T) {
	if err := run("", "", false); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run("/no/such/file", "", false); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(junk, "", false); err == nil {
		t.Fatal("junk accepted")
	}
}

// Command fwextract is the Binwalk-substitute: it scans a file for an
// embedded FWIMG container (the magic may sit at any offset behind
// bootloaders or vendor headers), prints the image metadata, and extracts
// the root filesystem to a directory:
//
//	fwextract -in dir645.fwimg -out rootfs/
//	fwextract -in dir645.fwimg -ls        # list files only
//
// Encrypted or corrupted images fail with a diagnostic, mirroring the
// paper's observation that more than 65% of collected images cannot be
// unpacked.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dtaint/internal/firmware"
)

func main() {
	var (
		in   = flag.String("in", "", "firmware image file")
		out  = flag.String("out", "", "directory to extract the root filesystem into")
		list = flag.Bool("ls", false, "list rootfs contents without extracting")
	)
	flag.Parse()
	if err := run(*in, *out, *list); err != nil {
		fmt.Fprintln(os.Stderr, "fwextract:", err)
		os.Exit(1)
	}
}

func run(in, out string, list bool) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	img, off, err := firmware.Scan(data)
	if err != nil {
		return fmt.Errorf("scan %s: %w", in, err)
	}
	h := img.Header
	fmt.Printf("container at offset %#x: %s %s %s (%d, %s)\n",
		off, h.Vendor, h.Product, h.Version, h.Year, h.Arch)
	for i, p := range img.Parts {
		enc := ""
		if p.Flags&firmware.FlagEncrypted != 0 {
			enc = " [encrypted]"
		}
		fmt.Printf("  part %d: %-8s %8d bytes%s\n", i, p.Type, len(p.Data), enc)
	}
	fs, err := firmware.ExtractRootFS(img)
	if err != nil {
		return fmt.Errorf("extract rootfs: %w", err)
	}
	if list || out == "" {
		for _, f := range fs.Files {
			fmt.Printf("%o %10d %s\n", f.Mode, len(f.Data), f.Path)
		}
		return nil
	}
	for _, f := range fs.Files {
		rel := strings.TrimPrefix(f.Path, "/")
		dst := filepath.Join(out, filepath.FromSlash(rel))
		if !strings.HasPrefix(filepath.Clean(dst), filepath.Clean(out)) {
			return fmt.Errorf("rootfs path %q escapes the output directory", f.Path)
		}
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dst, f.Data, os.FileMode(f.Mode)); err != nil {
			return err
		}
		fmt.Printf("extracted %s (%d bytes)\n", dst, len(f.Data))
	}
	return nil
}

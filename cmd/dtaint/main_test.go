package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtaint"
	"dtaint/internal/corpus"
)

func writeCorpus(t *testing.T) (fwFile, exeFile string) {
	t.Helper()
	dir := t.TempDir()
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fwFile = filepath.Join(dir, "dir645.fwimg")
	if err := os.WriteFile(fwFile, fw, 0o644); err != nil {
		t.Fatal(err)
	}
	exe, err := dtaint.GenerateOpenSSL(0.05)
	if err != nil {
		t.Fatal(err)
	}
	exeFile = filepath.Join(dir, "openssl.fwelf")
	if err := os.WriteFile(exeFile, exe, 0o644); err != nil {
		t.Fatal(err)
	}
	return fwFile, exeFile
}

func TestRunFirmware(t *testing.T) {
	fw, _ := writeCorpus(t)
	base := cliOptions{fwPath: fw, binPath: "/htdocs/cgibin"}
	if _, err := run(base); err != nil {
		t.Fatal(err)
	}
	// Paths and all modes.
	o := base
	o.paths = true
	if _, err := run(o); err != nil {
		t.Fatal(err)
	}
	o = base
	o.showAll = true
	if _, err := run(o); err != nil {
		t.Fatal(err)
	}
	// JSON mode.
	o = base
	o.jsonOut = true
	if _, err := run(o); err != nil {
		t.Fatal(err)
	}
	// Markdown report mode.
	o = base
	o.mdOut = filepath.Join(t.TempDir(), "report.md")
	if _, err := run(o); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(o.mdOut); err != nil || len(data) == 0 {
		t.Fatalf("markdown report not written: %v", err)
	}
	// Ablations.
	o = base
	o.noAlias, o.noSim = true, true
	if _, err := run(o); err != nil {
		t.Fatal(err)
	}
	// Auto-pick.
	if _, err := run(cliOptions{fwPath: fw}); err != nil {
		t.Fatal(err)
	}
	// Explicit worker count.
	o = base
	o.workers = 4
	if _, err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunExecutableAndDisassemble(t *testing.T) {
	_, exe := writeCorpus(t)
	if _, err := run(cliOptions{exePath: exe}); err != nil {
		t.Fatal(err)
	}
	if _, err := run(cliOptions{exePath: exe, dis: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(cliOptions{}); err == nil {
		t.Fatal("missing inputs accepted")
	}
	fw, _ := writeCorpus(t)
	if _, err := run(cliOptions{fwPath: fw, binPath: "/ghost"}); err == nil {
		t.Fatal("missing binary path accepted")
	}
	if _, err := run(cliOptions{fwPath: "/no/such/file"}); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not firmware"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(cliOptions{fwPath: junk}); err == nil {
		t.Fatal("junk firmware accepted")
	}
	if _, err := run(cliOptions{exePath: junk}); err == nil {
		t.Fatal("junk executable accepted")
	}
	// A bad log level must be rejected before any analysis runs.
	if _, err := run(cliOptions{fwPath: fw, binPath: "/htdocs/cgibin", logLevel: "loud"}); err == nil {
		t.Fatal("bad log level accepted")
	}
}

// The -exit-code contract: run reports the undeduplicated
// vulnerable-path count so main can exit 2 when it is positive.
func TestRunReturnsVulnerablePathCount(t *testing.T) {
	fw, _ := writeCorpus(t)
	n, err := run(cliOptions{fwPath: fw, binPath: "/htdocs/cgibin"})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("study image reported 0 vulnerable paths")
	}
	// Disassembly finds nothing by definition.
	_, exe := writeCorpus(t)
	n, err = run(cliOptions{exePath: exe, dis: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("disassembly mode reported %d vulnerable paths", n)
	}
}

func TestRunFleetMode(t *testing.T) {
	fw, _ := writeCorpus(t)
	o := cliOptions{fwPath: fw, cacheDir: filepath.Join(t.TempDir(), "cache"), workers: 2}
	n, _, err := runFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("fleet scan reported 0 vulnerable paths")
	}
	// Same cache dir again: served from disk, same totals.
	o.jsonOut = true
	n2, _, err := runFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("cached fleet run reported %d paths, first run %d", n2, n)
	}
}

// The diff-mode -exit-code contract: runDiff returns the NEW finding
// count, so an image diffed against itself yields zero (no exit 2) even
// though the image carries vulnerabilities, while a real version pair
// with introduced findings yields a positive count.
func TestRunDiffExitCodeOnNewFindingsOnly(t *testing.T) {
	fw, _ := writeCorpus(t)
	o := cliOptions{cacheDir: filepath.Join(t.TempDir(), "cache"), workers: 2}
	n, err := runDiff(o, fw, fw)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("self-diff returned %d new findings, want 0 (persisting findings must not trip -exit-code)", n)
	}
	// The same image scanned normally DOES report vulnerable paths —
	// the zero above is the diff classification, not a silent miss.
	if paths, _, err := runFleet(cliOptions{fwPath: fw}); err != nil || paths == 0 {
		t.Fatalf("fleet scan paths/err = %d/%v, want > 0/nil", paths, err)
	}

	vp, err := corpus.BuildVersionPair(corpus.VersionPairSpec{
		Binaries: 2, Mutated: 1, SharedFuncs: 8, TailFuncs: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	oldFile := filepath.Join(dir, "old.fwimg")
	newFile := filepath.Join(dir, "new.fwimg")
	if err := os.WriteFile(oldFile, vp.Old, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newFile, vp.New, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err = runDiff(o, oldFile, newFile)
	if err != nil {
		t.Fatal(err)
	}
	if n != vp.NewVulns {
		t.Fatalf("version-pair diff returned %d new findings, want %d", n, vp.NewVulns)
	}
	// JSON and Markdown renderings of the same diff.
	jo := o
	jo.jsonOut = true
	if _, err := runDiff(jo, oldFile, newFile); err != nil {
		t.Fatal(err)
	}
	mo := o
	mo.mdOut = filepath.Join(dir, "diff.md")
	if _, err := runDiff(mo, oldFile, newFile); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(mo.mdOut); err != nil || !strings.Contains(string(data), "# Firmware diff:") {
		t.Fatalf("markdown diff report not written: %v", err)
	}
}

func TestRunDiffErrors(t *testing.T) {
	fw, _ := writeCorpus(t)
	if _, err := runDiff(cliOptions{}, "/no/such/old", fw); err == nil {
		t.Fatal("missing old image accepted")
	}
	if _, err := runDiff(cliOptions{}, fw, "/no/such/new"); err == nil {
		t.Fatal("missing new image accepted")
	}
	if _, err := runDiff(cliOptions{workers: -1}, fw, fw); err == nil {
		t.Fatal("negative workers accepted")
	}
	junk := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(junk, []byte("not firmware"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runDiff(cliOptions{}, junk, fw); err == nil {
		t.Fatal("junk old image accepted")
	}
}

func TestRunFleetErrors(t *testing.T) {
	if _, _, err := runFleet(cliOptions{}); err == nil {
		t.Fatal("missing -fw accepted")
	}
	if _, _, err := runFleet(cliOptions{fwPath: "x", workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, _, err := runFleet(cliOptions{fwPath: "/no/such/file"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// -vocab swaps the analysis vocabulary: a spec that drops strcpy from
// the sink list must suppress findings the default vocabulary reports,
// and a malformed spec must abort before any analysis runs.
func TestRunVocabFlag(t *testing.T) {
	fw, _ := writeCorpus(t)
	base := cliOptions{fwPath: fw, binPath: "/htdocs/cgibin"}
	n, err := run(base)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("default vocabulary found nothing to compare against")
	}

	dir := t.TempDir()
	// A vocabulary with sources but no sinks at all: nothing can be
	// reported, so the vulnerable-path count must drop to zero.
	srcOnly := filepath.Join(dir, "sources-only.json")
	if err := os.WriteFile(srcOnly, []byte(`{"version": 1, "functions": [
		{"name": "recv", "kind": "source",
		 "args": [{"type": "int"}, {"type": "char*", "role": "dest"}, {"type": "int", "role": "len"}, {"type": "int"}]}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o := base
	o.vocabPath = srcOnly
	n2, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("sink-free vocabulary still reported %d vulnerable paths", n2)
	}

	// Malformed spec: rejected with the line-precise vocab error.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1, "functions": [
		{"name": "f", "kind": "sinkhole"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o = base
	o.vocabPath = bad
	if _, err := run(o); err == nil || !strings.Contains(err.Error(), "sinkhole") {
		t.Fatalf("malformed vocab error = %v", err)
	}
	// Same rejection on the fleet path.
	if _, _, err := runFleet(cliOptions{fwPath: fw, vocabPath: bad}); err == nil {
		t.Fatal("fleet mode accepted a malformed vocabulary")
	}
	// Missing file.
	o.vocabPath = filepath.Join(dir, "ghost.json")
	if _, err := run(o); err == nil {
		t.Fatal("missing vocab file accepted")
	}
}

// A negative -workers value must be rejected with a clear error, not
// silently mapped to GOMAXPROCS.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	fw, _ := writeCorpus(t)
	_, err := run(cliOptions{fwPath: fw, binPath: "/htdocs/cgibin", workers: -1})
	if err == nil {
		t.Fatal("negative worker count accepted")
	}
	if !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("error does not name the flag: %v", err)
	}
}

// -trace-out must produce Chrome trace_event JSON covering every
// pipeline stage — the Perfetto-loadable artifact from the docs.
func TestRunTraceOut(t *testing.T) {
	fw, _ := writeCorpus(t)
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	if _, err := run(cliOptions{fwPath: fw, binPath: "/htdocs/cgibin", traceOut: traceFile}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		names[ev.Name] = true
	}
	// The CLI unpacks the firmware itself (loadExecutable), so the
	// traced pipeline starts at parse-image.
	for _, want := range []string{"parse-image", "build-cfg",
		"function-analysis", "structsim", "interproc-dataflow", "count-sinks"} {
		if !names[want] {
			t.Errorf("trace lacks stage %q (got %v)", want, names)
		}
	}
	if len(names) < 6 {
		t.Fatalf("only %d distinct span names", len(names))
	}
}

// -progress must emit stage lines and per-function percentages.
func TestProgressWriter(t *testing.T) {
	fw, _ := writeCorpus(t)
	raw, err := loadExecutable(fw, "", "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	tracer := dtaint.NewTracer()
	journal := dtaint.NewEventJournal(0)
	var buf strings.Builder
	attachProgress(journal, &buf)
	a := dtaint.New(dtaint.WithTracer(tracer), dtaint.WithEventJournal(journal))
	if _, err := a.AnalyzeExecutable(raw); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dtaint: parse-image...",
		"dtaint: build-cfg done in",
		"dtaint: function-analysis:",
		"(100%)",
		"dtaint: interproc-dataflow done in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output lacks %q:\n%s", want, out)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtaint"
)

func writeCorpus(t *testing.T) (fwFile, exeFile string) {
	t.Helper()
	dir := t.TempDir()
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fwFile = filepath.Join(dir, "dir645.fwimg")
	if err := os.WriteFile(fwFile, fw, 0o644); err != nil {
		t.Fatal(err)
	}
	exe, err := dtaint.GenerateOpenSSL(0.05)
	if err != nil {
		t.Fatal(err)
	}
	exeFile = filepath.Join(dir, "openssl.fwelf")
	if err := os.WriteFile(exeFile, exe, 0o644); err != nil {
		t.Fatal(err)
	}
	return fwFile, exeFile
}

func TestRunFirmware(t *testing.T) {
	fw, _ := writeCorpus(t)
	if err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Paths and all modes.
	if err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, false, true, false, false); err != nil {
		t.Fatal(err)
	}
	// JSON mode.
	if err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, false, false, false, true); err != nil {
		t.Fatal(err)
	}
	// Markdown report mode.
	md := filepath.Join(t.TempDir(), "report.md")
	if err := run(fw, "", "/htdocs/cgibin", "", md, 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(md); err != nil || len(data) == 0 {
		t.Fatalf("markdown report not written: %v", err)
	}
	// Ablations.
	if err := run(fw, "", "/htdocs/cgibin", "", "", 0, true, true, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Auto-pick.
	if err := run(fw, "", "", "", "", 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Explicit worker count.
	if err := run(fw, "", "/htdocs/cgibin", "", "", 4, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunExecutableAndDisassemble(t *testing.T) {
	_, exe := writeCorpus(t)
	if err := run("", exe, "", "", "", 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", exe, "", "", "", 0, false, false, false, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("missing inputs accepted")
	}
	fw, _ := writeCorpus(t)
	if err := run(fw, "", "/ghost", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("missing binary path accepted")
	}
	if err := run("/no/such/file", "", "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not firmware"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(junk, "", "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("junk firmware accepted")
	}
	if err := run("", junk, "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("junk executable accepted")
	}
}

// A negative -workers value must be rejected with a clear error, not
// silently mapped to GOMAXPROCS.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	fw, _ := writeCorpus(t)
	err := run(fw, "", "/htdocs/cgibin", "", "", -1, false, false, false, false, false, false)
	if err == nil {
		t.Fatal("negative worker count accepted")
	}
	if !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("error does not name the flag: %v", err)
	}
}

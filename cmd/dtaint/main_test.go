package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtaint"
)

func writeCorpus(t *testing.T) (fwFile, exeFile string) {
	t.Helper()
	dir := t.TempDir()
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fwFile = filepath.Join(dir, "dir645.fwimg")
	if err := os.WriteFile(fwFile, fw, 0o644); err != nil {
		t.Fatal(err)
	}
	exe, err := dtaint.GenerateOpenSSL(0.05)
	if err != nil {
		t.Fatal(err)
	}
	exeFile = filepath.Join(dir, "openssl.fwelf")
	if err := os.WriteFile(exeFile, exe, 0o644); err != nil {
		t.Fatal(err)
	}
	return fwFile, exeFile
}

func TestRunFirmware(t *testing.T) {
	fw, _ := writeCorpus(t)
	if _, err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Paths and all modes.
	if _, err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, false, true, false, false); err != nil {
		t.Fatal(err)
	}
	// JSON mode.
	if _, err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, false, false, false, true); err != nil {
		t.Fatal(err)
	}
	// Markdown report mode.
	md := filepath.Join(t.TempDir(), "report.md")
	if _, err := run(fw, "", "/htdocs/cgibin", "", md, 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(md); err != nil || len(data) == 0 {
		t.Fatalf("markdown report not written: %v", err)
	}
	// Ablations.
	if _, err := run(fw, "", "/htdocs/cgibin", "", "", 0, true, true, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Auto-pick.
	if _, err := run(fw, "", "", "", "", 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Explicit worker count.
	if _, err := run(fw, "", "/htdocs/cgibin", "", "", 4, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunExecutableAndDisassemble(t *testing.T) {
	_, exe := writeCorpus(t)
	if _, err := run("", exe, "", "", "", 0, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := run("", exe, "", "", "", 0, false, false, false, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run("", "", "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("missing inputs accepted")
	}
	fw, _ := writeCorpus(t)
	if _, err := run(fw, "", "/ghost", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("missing binary path accepted")
	}
	if _, err := run("/no/such/file", "", "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not firmware"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(junk, "", "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("junk firmware accepted")
	}
	if _, err := run("", junk, "", "", "", 0, false, false, false, false, false, false); err == nil {
		t.Fatal("junk executable accepted")
	}
}

// The -exit-code contract: run reports the undeduplicated
// vulnerable-path count so main can exit 2 when it is positive.
func TestRunReturnsVulnerablePathCount(t *testing.T) {
	fw, _ := writeCorpus(t)
	n, err := run(fw, "", "/htdocs/cgibin", "", "", 0, false, false, false, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("study image reported 0 vulnerable paths")
	}
	// Disassembly finds nothing by definition.
	_, exe := writeCorpus(t)
	n, err = run("", exe, "", "", "", 0, false, false, false, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("disassembly mode reported %d vulnerable paths", n)
	}
}

func TestRunFleetMode(t *testing.T) {
	fw, _ := writeCorpus(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	n, err := runFleet(fw, cacheDir, 2, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("fleet scan reported 0 vulnerable paths")
	}
	// Same cache dir again: served from disk, same totals.
	n2, err := runFleet(fw, cacheDir, 2, false, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("cached fleet run reported %d paths, first run %d", n2, n)
	}
}

func TestRunFleetErrors(t *testing.T) {
	if _, err := runFleet("", "", 0, false, false, false); err == nil {
		t.Fatal("missing -fw accepted")
	}
	if _, err := runFleet("x", "", -1, false, false, false); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := runFleet("/no/such/file", "", 0, false, false, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

// A negative -workers value must be rejected with a clear error, not
// silently mapped to GOMAXPROCS.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	fw, _ := writeCorpus(t)
	_, err := run(fw, "", "/htdocs/cgibin", "", "", -1, false, false, false, false, false, false)
	if err == nil {
		t.Fatal("negative worker count accepted")
	}
	if !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("error does not name the flag: %v", err)
	}
}

package main

import (
	"io"

	"dtaint"
)

// attachProgress subscribes the shared event-bus progress renderer to
// the journal: stage lines, decile percentages with ETA, per-binary
// completion lines. The CLI and dtaintd's SSE stream consume the same
// events, so -progress output and server telemetry can never drift
// apart. It returns a function removing the subscription.
func attachProgress(j *dtaint.EventJournal, w io.Writer) func() {
	return j.AttachProgressPrinter(w)
}

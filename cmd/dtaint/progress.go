package main

import (
	"fmt"
	"io"
	"sync"

	"dtaint"
)

// progressWriter turns tracer span events into per-stage progress
// lines on stderr: one line when a stage starts, a percentage line for
// every 10% of per-function work completed, and a completion line with
// the stage duration. Span handlers run on analysis worker goroutines,
// so all state is guarded by one mutex and each line is written with a
// single Fprintf.
type progressWriter struct {
	mu     sync.Mutex
	w      io.Writer
	totals map[string]int // stage -> function denominator
	counts map[string]int // stage -> per-function spans finished
	decile map[string]int // stage -> last tenth printed
}

// perFunction maps per-function span names to the enclosing stage
// whose "functions" attr is the progress denominator.
var perFunction = map[string]string{
	"ssa-function": "function-analysis",
	"ddg-function": "interproc-dataflow",
}

// progressStages are the span names reported as stages; per-function,
// per-component, and per-binary spans are handled separately.
var progressStages = map[string]bool{
	"unpack-firmware":    true,
	"parse-image":        true,
	"build-cfg":          true,
	"function-analysis":  true,
	"structsim":          true,
	"interproc-dataflow": true,
	"count-sinks":        true,
	"scan-image":         true,
}

// attachProgress registers the progress reporter on the tracer. It
// must run before the analysis starts.
func attachProgress(t *dtaint.Tracer, w io.Writer) *progressWriter {
	p := &progressWriter{
		w:      w,
		totals: make(map[string]int),
		counts: make(map[string]int),
		decile: make(map[string]int),
	}
	t.OnSpanStart(p.spanStart)
	t.OnSpanEnd(p.spanEnd)
	return p
}

func (p *progressWriter) spanStart(ev dtaint.SpanEvent) {
	if !progressStages[ev.Name] {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, ok := attrInt(ev.Attrs["functions"]); ok && n > 0 {
		p.totals[ev.Name] = n
		fmt.Fprintf(p.w, "dtaint: %s: %d functions\n", ev.Name, n)
		return
	}
	fmt.Fprintf(p.w, "dtaint: %s...\n", ev.Name)
}

func (p *progressWriter) spanEnd(ev dtaint.SpanEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case perFunction[ev.Name] != "":
		stage := perFunction[ev.Name]
		p.counts[stage]++
		total := p.totals[stage]
		if total == 0 {
			return
		}
		if tenth := p.counts[stage] * 10 / total; tenth > p.decile[stage] {
			p.decile[stage] = tenth
			fmt.Fprintf(p.w, "dtaint: %s: %d/%d functions (%d%%)\n",
				stage, p.counts[stage], total, tenth*10)
		}
	case ev.Name == "scan-binary":
		status, _ := ev.Attrs["status"].(string)
		path, _ := ev.Attrs["path"].(string)
		fmt.Fprintf(p.w, "dtaint: scanned %s (%s) in %.2fs\n",
			path, status, ev.Duration.Seconds())
	case progressStages[ev.Name]:
		fmt.Fprintf(p.w, "dtaint: %s done in %.2fs\n", ev.Name, ev.Duration.Seconds())
	}
}

// attrInt widens whichever integer type a span attr carries.
func attrInt(v any) (int, bool) {
	switch n := v.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case uint64:
		return int(n), true
	case float64:
		return int(n), true
	}
	return 0, false
}

// Command dtaint analyzes a firmware image or program executable for
// taint-style vulnerabilities:
//
//	dtaint -fw dir645.fwimg -bin /htdocs/cgibin
//	dtaint -exe openssl.fwelf
//	dtaint -fw camera.fwimg -bin /usr/bin/centaurus -module DS-2CD6233F
//	dtaint -exe prog.fwelf -dis          # disassemble instead of analyzing
//	dtaint -exe prog.fwelf -workers 8    # analysis worker count
//	dtaint -fw camera.fwimg -rootfs-all  # scan every executable in the image
//
// Flags -no-alias and -no-structsim disable the corresponding analysis
// features (ablations); -paths prints every vulnerable path rather than
// the deduplicated vulnerability list; -all also prints sanitized paths.
// -workers N sets the worker count for both parallel analysis phases —
// the per-function pass and the bottom-up SCC-DAG scheduler (0, the
// default, uses GOMAXPROCS; negative values are rejected).
//
// -rootfs-all switches from one binary to the whole image: every FWELF
// executable in the rootfs is scanned through the fleet orchestrator
// (bounded worker pool, panic isolation) and per-image totals are
// printed; -cache-dir reuses reports across runs. -exit-code makes the
// process exit 2 when any undeduplicated vulnerable path is found, so
// CI pipelines can gate on scan results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dtaint"
	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/firmware"
	"dtaint/internal/image"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
)

func main() {
	var (
		fwPath   = flag.String("fw", "", "firmware image file (FWIMG container)")
		exePath  = flag.String("exe", "", "program executable file (FWELF)")
		binPath  = flag.String("bin", "", "path of the binary inside the firmware rootfs")
		module   = flag.String("module", "", "restrict analysis to a study product's network module")
		noAlias  = flag.Bool("no-alias", false, "disable pointer-alias recognition (Algorithm 1)")
		noSim    = flag.Bool("no-structsim", false, "disable data-structure similarity resolution")
		paths    = flag.Bool("paths", false, "print every vulnerable path, not just deduplicated vulnerabilities")
		showAll  = flag.Bool("all", false, "also print sanitized paths")
		dis      = flag.Bool("dis", false, "disassemble the executable instead of analyzing")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		mdOut    = flag.String("report", "", "write a Markdown report to this file")
		traceFn  = flag.String("trace", "", "print the symbolic-analysis listing of one function (the paper's Figure 6) and exit")
		workers  = flag.Int("workers", 0, "worker count for both analysis phases (0 = GOMAXPROCS)")
		allBins  = flag.Bool("rootfs-all", false, "scan every FWELF executable in the firmware rootfs (requires -fw)")
		cacheDir = flag.String("cache-dir", "", "with -rootfs-all: persistent report cache directory")
		exitCode = flag.Bool("exit-code", false, "exit 2 when undeduplicated vulnerable paths are found")
	)
	flag.Parse()

	if *traceFn != "" {
		if err := runTrace(*fwPath, *exePath, *binPath, *traceFn); err != nil {
			fmt.Fprintln(os.Stderr, "dtaint:", err)
			os.Exit(1)
		}
		return
	}
	var vulnPaths int
	var err error
	if *allBins {
		vulnPaths, err = runFleet(*fwPath, *cacheDir, *workers, *noAlias, *noSim, *jsonOut)
	} else {
		vulnPaths, err = run(*fwPath, *exePath, *binPath, *module, *mdOut, *workers, *noAlias, *noSim, *paths, *showAll, *dis, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtaint:", err)
		os.Exit(1)
	}
	if *exitCode && vulnPaths > 0 {
		os.Exit(2)
	}
}

// analyzerOptions translates the shared flags into library options.
func analyzerOptions(module string, workers int, noAlias, noSim bool) []dtaint.Option {
	var opts []dtaint.Option
	if noAlias {
		opts = append(opts, dtaint.WithoutAliasAnalysis())
	}
	if noSim {
		opts = append(opts, dtaint.WithoutStructSimilarity())
	}
	if module != "" {
		filter := dtaint.StudyModuleFilter(module)
		if filter != nil {
			opts = append(opts, dtaint.WithFunctionFilter(filter))
		}
	}
	if workers > 0 {
		opts = append(opts, dtaint.WithParallelism(workers))
	}
	return opts
}

// runFleet scans every executable of the firmware rootfs through the
// fleet orchestrator and prints the per-image report. It returns the
// total undeduplicated vulnerable-path count for -exit-code.
func runFleet(fwPath, cacheDir string, workers int, noAlias, noSim, jsonOut bool) (int, error) {
	if workers < 0 {
		return 0, fmt.Errorf("-workers must be >= 0 (0 uses GOMAXPROCS), got %d", workers)
	}
	if fwPath == "" {
		return 0, fmt.Errorf("-rootfs-all requires -fw")
	}
	data, err := os.ReadFile(fwPath)
	if err != nil {
		return 0, err
	}
	var fopts []dtaint.FleetOption
	if workers > 0 {
		fopts = append(fopts, dtaint.WithFleetWorkers(workers))
	}
	if cacheDir != "" {
		cache, err := dtaint.NewFleetCache(0, cacheDir)
		if err != nil {
			return 0, err
		}
		fopts = append(fopts, dtaint.WithFleetCache(cache))
	}
	a := dtaint.New(analyzerOptions("", 0, noAlias, noSim)...)
	img, err := a.ScanFirmwareFleet(context.Background(), data, fopts...)
	if err != nil {
		return 0, err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return img.VulnerablePaths, enc.Encode(img)
	}
	fmt.Printf("image %s %s %s (%d): %d candidate binaries\n",
		img.Vendor, img.Product, img.Version, img.Year, img.Candidates)
	for _, b := range img.Binaries {
		switch b.Status {
		case dtaint.BinaryOK, dtaint.BinaryCached:
			fmt.Printf("  %-32s %-7s %3d vulnerabilities, %3d paths  (%v)\n",
				b.Path, b.Status, len(b.Report.Vulnerabilities()), len(b.Report.VulnerablePaths()), b.Duration)
		default:
			fmt.Printf("  %-32s %-7s %s\n", b.Path, b.Status, b.Error)
		}
	}
	fmt.Printf("totals: %d scanned, %d cached, %d failed, %d skipped; %d vulnerabilities over %d paths; wall %v\n",
		img.Scanned, img.Cached, img.Failed, img.Skipped,
		img.Vulnerabilities, img.VulnerablePaths, img.Wall)
	if img.Cache != (dtaint.CacheStats{}) {
		fmt.Printf("cache: %d hits (%d disk), %d misses, %d evictions, %d entries\n",
			img.Cache.Hits, img.Cache.DiskHits, img.Cache.Misses, img.Cache.Evictions, img.Cache.Entries)
	}
	return img.VulnerablePaths, nil
}

func run(fwPath, exePath, binPath, module, mdOut string, workers int, noAlias, noSim, paths, showAll, dis, jsonOut bool) (int, error) {
	if workers < 0 {
		return 0, fmt.Errorf("-workers must be >= 0 (0 uses GOMAXPROCS), got %d", workers)
	}
	raw, err := loadExecutable(fwPath, exePath, binPath)
	if err != nil {
		return 0, err
	}
	if dis {
		bin, err := image.Parse(raw)
		if err != nil {
			return 0, err
		}
		text, err := asm.Disassemble(bin)
		if err != nil {
			return 0, err
		}
		fmt.Print(text)
		return 0, nil
	}

	rep, err := dtaint.New(analyzerOptions(module, workers, noAlias, noSim)...).AnalyzeExecutable(raw)
	if err != nil {
		return 0, err
	}
	vulnPaths := len(rep.VulnerablePaths())

	if mdOut != "" {
		f, err := os.Create(mdOut)
		if err != nil {
			return 0, err
		}
		if err := rep.WriteMarkdown(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Printf("wrote %s\n", mdOut)
		return vulnPaths, nil
	}
	if jsonOut {
		return vulnPaths, writeJSON(rep, showAll)
	}

	fmt.Printf("binary %s (%s): %d functions, %d blocks, %d call edges\n",
		rep.Binary, rep.Arch, rep.Functions, rep.Blocks, rep.CallEdges)
	fmt.Printf("analyzed %d functions, %d sink sites, %d indirect calls resolved\n",
		rep.FunctionsAnalyzed, rep.SinkCount, rep.IndirectResolved)
	fmt.Printf("symbolic analysis %v, data-flow generation %v (%d workers, %d components, critical path %d)\n\n",
		rep.SSATime, rep.DDGTime, rep.DDGWorkers, rep.SCCComponents, rep.CriticalPath)

	switch {
	case showAll:
		for _, f := range rep.Findings {
			fmt.Println(f)
		}
		fmt.Printf("\n%d findings (%d vulnerable paths, %d vulnerabilities)\n",
			len(rep.Findings), len(rep.VulnerablePaths()), len(rep.Vulnerabilities()))
	case paths:
		for _, f := range rep.VulnerablePaths() {
			fmt.Println(f)
		}
		fmt.Printf("\n%d vulnerable paths\n", len(rep.VulnerablePaths()))
	default:
		for _, f := range rep.Vulnerabilities() {
			fmt.Println(f)
		}
		fmt.Printf("\n%d vulnerabilities (%d paths)\n",
			len(rep.Vulnerabilities()), len(rep.VulnerablePaths()))
	}
	return vulnPaths, nil
}

// runTrace prints the per-function static symbolic analysis listing —
// the same rendering as the paper's Figure 6, with evaluated symbolic
// expressions per executed statement.
func runTrace(fwPath, exePath, binPath, fnName string) error {
	raw, err := loadExecutable(fwPath, exePath, binPath)
	if err != nil {
		return err
	}
	bin, err := image.Parse(raw)
	if err != nil {
		return err
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return err
	}
	fn := prog.ByName[fnName]
	if fn == nil {
		return fmt.Errorf("function %q not found", fnName)
	}
	tracker := taint.NewTracker()
	tracker.BeginFunction(fnName)
	opts := symexec.Options{
		Prototypes: taint.Prototypes(),
		Trace: func(addr uint32, line string) {
			fmt.Printf("%06X: %s\n", addr, line)
		},
	}
	fmt.Printf("; static symbolic analysis of %s (%s)\n", fnName, bin.Arch)
	sum := symexec.Analyze(fn, bin, tracker, opts)
	fmt.Printf("; %d states over %d blocks; %d definition pairs, %d constraints\n",
		sum.StatesExplored, sum.BlocksAnalyzed, len(sum.DefPairs), len(sum.Constraints))
	return nil
}

// jsonReport is the machine-readable output schema.
type jsonReport struct {
	Binary            string        `json:"binary"`
	Arch              string        `json:"arch"`
	Functions         int           `json:"functions"`
	Blocks            int           `json:"blocks"`
	CallEdges         int           `json:"callEdges"`
	FunctionsAnalyzed int           `json:"functionsAnalyzed"`
	SinkCount         int           `json:"sinkCount"`
	IndirectResolved  int           `json:"indirectResolved"`
	SSAMillis         int64         `json:"ssaMillis"`
	DDGMillis         int64         `json:"ddgMillis"`
	DDGWorkers        int           `json:"ddgWorkers"`
	SCCComponents     int           `json:"sccComponents"`
	CriticalPath      int           `json:"criticalPath"`
	Findings          []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	Class     string   `json:"class"`
	CWE       string   `json:"cwe"`
	Sink      string   `json:"sink"`
	SinkFunc  string   `json:"sinkFunc"`
	SinkAddr  uint32   `json:"sinkAddr"`
	Source    string   `json:"source"`
	Path      []string `json:"path"`
	Sanitized bool     `json:"sanitized"`
}

func writeJSON(rep *dtaint.Report, includeSanitized bool) error {
	out := jsonReport{
		Binary:            rep.Binary,
		Arch:              rep.Arch,
		Functions:         rep.Functions,
		Blocks:            rep.Blocks,
		CallEdges:         rep.CallEdges,
		FunctionsAnalyzed: rep.FunctionsAnalyzed,
		SinkCount:         rep.SinkCount,
		IndirectResolved:  rep.IndirectResolved,
		SSAMillis:         rep.SSATime.Milliseconds(),
		DDGMillis:         rep.DDGTime.Milliseconds(),
		DDGWorkers:        rep.DDGWorkers,
		SCCComponents:     rep.SCCComponents,
		CriticalPath:      rep.CriticalPath,
	}
	for _, f := range rep.Findings {
		if f.Sanitized && !includeSanitized {
			continue
		}
		out.Findings = append(out.Findings, jsonFinding{
			Class:     string(f.Class),
			CWE:       f.CWE(),
			Sink:      f.Sink,
			SinkFunc:  f.SinkFunc,
			SinkAddr:  f.SinkAddr,
			Source:    f.Source,
			Path:      f.Path,
			Sanitized: f.Sanitized,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func loadExecutable(fwPath, exePath, binPath string) ([]byte, error) {
	switch {
	case exePath != "":
		return os.ReadFile(exePath)
	case fwPath != "":
		data, err := os.ReadFile(fwPath)
		if err != nil {
			return nil, err
		}
		_, fs, err := firmware.Unpack(data)
		if err != nil {
			return nil, fmt.Errorf("unpack %s: %w", fwPath, err)
		}
		if binPath != "" {
			f, err := fs.Lookup(binPath)
			if err != nil {
				return nil, err
			}
			return f.Data, nil
		}
		for _, f := range fs.Files {
			if _, err := image.Parse(f.Data); err == nil {
				fmt.Fprintf(os.Stderr, "dtaint: auto-selected %s\n", f.Path)
				return f.Data, nil
			}
		}
		return nil, fmt.Errorf("no analyzable executable in %s (use -bin)", fwPath)
	default:
		return nil, fmt.Errorf("one of -fw or -exe is required")
	}
}

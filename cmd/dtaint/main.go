// Command dtaint analyzes a firmware image or program executable for
// taint-style vulnerabilities:
//
//	dtaint -fw dir645.fwimg -bin /htdocs/cgibin
//	dtaint -exe openssl.fwelf
//	dtaint -fw camera.fwimg -bin /usr/bin/centaurus -module DS-2CD6233F
//	dtaint -exe prog.fwelf -dis          # disassemble instead of analyzing
//	dtaint -exe prog.fwelf -workers 8    # analysis worker count
//	dtaint -fw camera.fwimg -rootfs-all  # scan every executable in the image
//
// -ablate takes a comma-separated feature list (alias, sse, structsim,
// vrange) and disables those analyses; -no-alias and -no-structsim are
// the older spellings of two of them. Ablating sse turns off structured
// symbolic expressions: alias rewriting falls back to the paper's
// pairwise Algorithm 1 and indirect calls are resolved by layout
// similarity alone. Ablating vrange turns off the
// interval value-range domain: verdicts fall back to structural bounds
// and the off-by-one/length-truncation classes disappear. -paths prints
// every vulnerable path rather than the deduplicated vulnerability
// list; -all also prints sanitized paths.
// -workers N sets the worker count for both parallel analysis phases —
// the per-function pass and the bottom-up SCC-DAG scheduler (0, the
// default, uses GOMAXPROCS; negative values are rejected).
// -vocab file.json replaces the embedded source/sink/sanitizer
// vocabulary with a JSON spec (see DESIGN.md §3.5); malformed specs
// are rejected with line- and field-precise errors before any
// analysis starts.
//
// -rootfs-all switches from one binary to the whole image: every FWELF
// executable in the rootfs is scanned through the fleet orchestrator
// (bounded worker pool, panic isolation) and per-image totals are
// printed; -cache-dir reuses reports across runs. -summary-dir (valid
// with and without -rootfs-all) keeps a persistent function-summary
// store, so re-runs and binaries sharing code replay per-function
// analysis instead of repeating it. -exit-code makes the
// process exit 2 when any undeduplicated vulnerable path is found, so
// CI pipelines can gate on scan results; it exits 3 when the stall
// watchdog abandoned any binary and nothing vulnerable was found — an
// incomplete scan must never look like a clean one.
//
// -stall-timeout (with -rootfs-all) arms a watchdog over the scan's
// telemetry stream: a binary whose analysis emits no event for that
// long is abandoned and reported as "stalled", and with -debug-dir a
// diagnostic bundle (goroutine dump, trace, metrics, event journal,
// partial report) is written per stall.
//
// -diff compares two firmware versions instead of scanning one:
//
//	dtaint -diff old.fwimg new.fwimg
//	dtaint -diff -cache-dir .cache -summary-dir .sums old.fwimg new.fwimg
//	dtaint -diff -exit-code old.fwimg new.fwimg   # exit 2 on NEW findings only
//
// Binaries are paired by rootfs path and content hash; unchanged ones
// replay from -cache-dir, changed ones re-analyze with unchanged
// functions replaying from -summary-dir, and every finding classifies
// as new, fixed, or persisting across the versions. -json emits the
// DiffReport; -report writes the Markdown rendering. With -diff,
// -exit-code gates on *new* findings: a release that only carries
// known, persisting findings does not fail the pipeline.
//
// Observability (all off by default):
//
//	dtaint -fw dir645.fwimg -bin /htdocs/cgibin -trace-out trace.json
//	dtaint -fw dir645.fwimg -rootfs-all -progress
//	dtaint -exe prog.fwelf -log-level debug -log-format json
//
// -trace-out records every pipeline stage (and each analyzed function)
// as a span and writes Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing. -progress prints per-stage progress lines to
// stderr — percentages and ETA for the two per-function phases —
// rendered from the same live event bus dtaintd streams over SSE.
// -log-level enables structured logging (log/slog) to stderr;
// -log-format picks text or json lines.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dtaint"
	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/firmware"
	"dtaint/internal/image"
	"dtaint/internal/obs"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
)

func main() {
	var (
		fwPath    = flag.String("fw", "", "firmware image file (FWIMG container)")
		exePath   = flag.String("exe", "", "program executable file (FWELF)")
		binPath   = flag.String("bin", "", "path of the binary inside the firmware rootfs")
		module    = flag.String("module", "", "restrict analysis to a study product's network module")
		noAlias   = flag.Bool("no-alias", false, "disable pointer-alias recognition (Algorithm 1)")
		noSim     = flag.Bool("no-structsim", false, "disable data-structure similarity resolution")
		ablate    = flag.String("ablate", "", "comma-separated analysis features to disable: alias, sse, structsim, vrange")
		paths     = flag.Bool("paths", false, "print every vulnerable path, not just deduplicated vulnerabilities")
		showAll   = flag.Bool("all", false, "also print sanitized paths")
		dis       = flag.Bool("dis", false, "disassemble the executable instead of analyzing")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		mdOut     = flag.String("report", "", "write a Markdown report to this file")
		traceFn   = flag.String("trace", "", "print the symbolic-analysis listing of one function (the paper's Figure 6) and exit")
		workers   = flag.Int("workers", 0, "worker count for both analysis phases (0 = GOMAXPROCS)")
		vocabPath = flag.String("vocab", "", "source/sink/sanitizer vocabulary spec (JSON; empty = embedded default)")
		allBins   = flag.Bool("rootfs-all", false, "scan every FWELF executable in the firmware rootfs (requires -fw)")
		diffMode  = flag.Bool("diff", false, "diff two firmware images given as positional arguments: dtaint -diff old.fwimg new.fwimg")
		cacheDir  = flag.String("cache-dir", "", "with -rootfs-all: persistent report cache directory")
		sumDir    = flag.String("summary-dir", "", "persistent function-summary store directory, shared across runs")
		exitCode  = flag.Bool("exit-code", false, "exit 2 when undeduplicated vulnerable paths are found")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace_event JSON of the pipeline stages to this file")
		progress  = flag.Bool("progress", false, "print per-stage progress lines to stderr")
		stallWait = flag.Duration("stall-timeout", 0, "with -rootfs-all: abandon binaries when no telemetry event flows for this long (0 = off)")
		debugDir  = flag.String("debug-dir", "", "with -stall-timeout: write one diagnostic bundle directory per stall here")
		logLevel  = flag.String("log-level", "", "enable structured logging at this level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	if *traceFn != "" {
		if err := runTrace(*fwPath, *exePath, *binPath, *traceFn); err != nil {
			fmt.Fprintln(os.Stderr, "dtaint:", err)
			os.Exit(1)
		}
		return
	}
	o := cliOptions{
		fwPath: *fwPath, exePath: *exePath, binPath: *binPath,
		module: *module, mdOut: *mdOut, workers: *workers,
		noAlias: *noAlias, noSim: *noSim,
		paths: *paths, showAll: *showAll, dis: *dis, jsonOut: *jsonOut,
		cacheDir: *cacheDir, sumDir: *sumDir, traceOut: *traceOut, progress: *progress,
		stallWait: *stallWait, debugDir: *debugDir,
		logLevel: *logLevel, logFormat: *logFormat, vocabPath: *vocabPath,
	}
	if err := o.applyAblations(*ablate); err != nil {
		fmt.Fprintln(os.Stderr, "dtaint:", err)
		os.Exit(1)
	}
	// vulnPaths drives -exit-code: vulnerable paths for scans, NEW
	// findings for diffs (persisting findings don't fail a release gate).
	// stalledBins counts watchdog-abandoned binaries: those analyses
	// never finished, so a clean exit would be a false all-clear.
	var vulnPaths, stalledBins int
	var err error
	switch {
	case *diffMode:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dtaint: -diff takes exactly two image arguments: old.fwimg new.fwimg")
			os.Exit(1)
		}
		vulnPaths, err = runDiff(o, flag.Arg(0), flag.Arg(1))
	case *allBins:
		vulnPaths, stalledBins, err = runFleet(o)
	default:
		vulnPaths, err = run(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtaint:", err)
		os.Exit(1)
	}
	if *exitCode {
		if vulnPaths > 0 {
			os.Exit(2)
		}
		if stalledBins > 0 {
			// Distinct from both "clean" (0) and "found" (2): the scan is
			// incomplete, not vulnerability-free.
			os.Exit(3)
		}
	}
}

// cliOptions carries the parsed analysis flags into run and runFleet.
type cliOptions struct {
	fwPath, exePath, binPath string
	module, mdOut            string
	workers                  int
	noAlias, noSSE           bool
	noSim, noVRange          bool
	paths, showAll           bool
	dis, jsonOut             bool
	cacheDir, sumDir         string
	traceOut                 string
	progress                 bool
	stallWait                time.Duration
	debugDir                 string
	logLevel, logFormat      string
	vocabPath                string
}

// vocabulary loads the -vocab spec; an empty path keeps the embedded
// default and returns no option. Malformed specs abort with the vocab
// package's line/field-precise error.
func (o cliOptions) vocabulary() ([]dtaint.Option, error) {
	if o.vocabPath == "" {
		return nil, nil
	}
	v, err := dtaint.LoadVocabulary(o.vocabPath)
	if err != nil {
		return nil, err
	}
	return []dtaint.Option{dtaint.WithVocabulary(v)}, nil
}

// applyAblations folds the -ablate list into the feature switches.
func (o *cliOptions) applyAblations(list string) error {
	if list == "" {
		return nil
	}
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "alias":
			o.noAlias = true
		case "sse":
			o.noSSE = true
		case "structsim":
			o.noSim = true
		case "vrange":
			o.noVRange = true
		case "":
		default:
			return fmt.Errorf("unknown -ablate feature %q (want alias, sse, structsim, or vrange)", name)
		}
	}
	return nil
}

// observability translates the tracing/progress/logging flags into
// analyzer options. The returned flush writes -trace-out (if any) once
// the analysis has finished and must run on the success path only.
func (o cliOptions) observability() (opts []dtaint.Option, flush func() error, err error) {
	var tracer *dtaint.Tracer
	if o.traceOut != "" || o.progress {
		tracer = dtaint.NewTracer()
		opts = append(opts, dtaint.WithTracer(tracer))
	}
	if o.progress {
		// -progress rides the event bus: the tracer's spans are bridged
		// into a journal (by dtaint.New) and the printer renders the
		// events — the same stream dtaintd serves over SSE.
		j := dtaint.NewEventJournal(0)
		attachProgress(j, os.Stderr)
		opts = append(opts, dtaint.WithEventJournal(j))
	}
	if o.logLevel != "" {
		logger, err := obs.NewLogger(os.Stderr, o.logLevel, o.logFormat)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, dtaint.WithLogger(logger))
	}
	flush = func() error {
		if o.traceOut == "" {
			return nil
		}
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dtaint: wrote trace to %s\n", o.traceOut)
		return nil
	}
	return opts, flush, nil
}

// analyzerOptions translates the shared flags into library options.
func analyzerOptions(module string, workers int, noAlias, noSSE, noSim, noVRange bool) []dtaint.Option {
	var opts []dtaint.Option
	if noAlias {
		opts = append(opts, dtaint.WithoutAliasAnalysis())
	}
	if noSSE {
		opts = append(opts, dtaint.WithoutSSE())
	}
	if noSim {
		opts = append(opts, dtaint.WithoutStructSimilarity())
	}
	if noVRange {
		opts = append(opts, dtaint.WithoutValueRange())
	}
	if module != "" {
		filter := dtaint.StudyModuleFilter(module)
		if filter != nil {
			opts = append(opts, dtaint.WithFunctionFilter(filter))
		}
	}
	if workers > 0 {
		opts = append(opts, dtaint.WithParallelism(workers))
	}
	return opts
}

// fleetOptions translates the shared orchestration flags (-workers,
// -cache-dir, -summary-dir) into fleet options for runFleet and runDiff.
func (o cliOptions) fleetOptions() ([]dtaint.FleetOption, error) {
	var fopts []dtaint.FleetOption
	if o.workers > 0 {
		fopts = append(fopts, dtaint.WithFleetWorkers(o.workers))
	}
	if o.cacheDir != "" {
		cache, err := dtaint.NewFleetCache(0, o.cacheDir)
		if err != nil {
			return nil, err
		}
		fopts = append(fopts, dtaint.WithFleetCache(cache))
	}
	if o.sumDir != "" {
		store, err := dtaint.NewSummaryStore(0, o.sumDir)
		if err != nil {
			return nil, err
		}
		fopts = append(fopts, dtaint.WithFleetSummaryStore(store))
	}
	if o.stallWait > 0 {
		fopts = append(fopts, dtaint.WithFleetStallTimeout(o.stallWait))
	}
	if o.debugDir != "" {
		fopts = append(fopts, dtaint.WithFleetDebugDir(o.debugDir))
	}
	return fopts, nil
}

// runFleet scans every executable of the firmware rootfs through the
// fleet orchestrator and prints the per-image report. It returns the
// total undeduplicated vulnerable-path count and the watchdog-stalled
// binary count for -exit-code.
func runFleet(o cliOptions) (int, int, error) {
	if o.workers < 0 {
		return 0, 0, fmt.Errorf("-workers must be >= 0 (0 uses GOMAXPROCS), got %d", o.workers)
	}
	if o.fwPath == "" {
		return 0, 0, fmt.Errorf("-rootfs-all requires -fw")
	}
	data, err := os.ReadFile(o.fwPath)
	if err != nil {
		return 0, 0, err
	}
	fopts, err := o.fleetOptions()
	if err != nil {
		return 0, 0, err
	}
	aopts, flushTrace, err := o.observability()
	if err != nil {
		return 0, 0, err
	}
	vopts, err := o.vocabulary()
	if err != nil {
		return 0, 0, err
	}
	aopts = append(aopts, vopts...)
	aopts = append(aopts, analyzerOptions("", 0, o.noAlias, o.noSSE, o.noSim, o.noVRange)...)
	a := dtaint.New(aopts...)
	img, err := a.ScanFirmwareFleet(context.Background(), data, fopts...)
	if err != nil {
		return 0, 0, err
	}
	if err := flushTrace(); err != nil {
		return 0, 0, err
	}
	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return img.VulnerablePaths, img.Stalled, enc.Encode(img)
	}
	fmt.Printf("image %s %s %s (%d): %d candidate binaries\n",
		img.Vendor, img.Product, img.Version, img.Year, img.Candidates)
	for _, b := range img.Binaries {
		switch b.Status {
		case dtaint.BinaryOK, dtaint.BinaryCached:
			fmt.Printf("  %-32s %-7s %3d vulnerabilities, %3d paths  (%v)\n",
				b.Path, b.Status, len(b.Report.Vulnerabilities()), len(b.Report.VulnerablePaths()), b.Duration)
		default:
			fmt.Printf("  %-32s %-7s %s\n", b.Path, b.Status, b.Error)
		}
	}
	fmt.Printf("totals: %d scanned, %d cached, %d failed, %d stalled, %d skipped; %d vulnerabilities over %d paths; wall %v\n",
		img.Scanned, img.Cached, img.Failed, img.Stalled, img.Skipped,
		img.Vulnerabilities, img.VulnerablePaths, img.Wall)
	if img.Cache != (dtaint.CacheStats{}) {
		fmt.Printf("cache: %d hits (%d disk), %d misses, %d evictions, %d entries\n",
			img.Cache.Hits, img.Cache.DiskHits, img.Cache.Misses, img.Cache.Evictions, img.Cache.Entries)
	}
	return img.VulnerablePaths, img.Stalled, nil
}

// runDiff diffs two firmware versions and prints the cross-version
// report. It returns the NEW finding count — not the total — so
// -exit-code fails a pipeline only when a release introduces findings,
// not when it merely carries known persisting ones.
func runDiff(o cliOptions, oldPath, newPath string) (int, error) {
	if o.workers < 0 {
		return 0, fmt.Errorf("-workers must be >= 0 (0 uses GOMAXPROCS), got %d", o.workers)
	}
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return 0, err
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return 0, err
	}
	fopts, err := o.fleetOptions()
	if err != nil {
		return 0, err
	}
	aopts, flushTrace, err := o.observability()
	if err != nil {
		return 0, err
	}
	vopts, err := o.vocabulary()
	if err != nil {
		return 0, err
	}
	aopts = append(aopts, vopts...)
	aopts = append(aopts, analyzerOptions("", 0, o.noAlias, o.noSSE, o.noSim, o.noVRange)...)
	rep, err := dtaint.New(aopts...).ScanFirmwareDiff(context.Background(), oldData, newData, fopts...)
	if err != nil {
		return 0, err
	}
	if err := flushTrace(); err != nil {
		return 0, err
	}
	if o.mdOut != "" {
		f, err := os.Create(o.mdOut)
		if err != nil {
			return 0, err
		}
		if err := rep.WriteMarkdown(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Printf("wrote %s\n", o.mdOut)
		return rep.NewFindings, nil
	}
	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return rep.NewFindings, enc.Encode(rep)
	}
	fmt.Printf("diff %s %s: %s → %s\n", rep.New.Vendor, rep.New.Product,
		rep.Old.Version, rep.New.Version)
	fmt.Printf("binaries: %d unchanged, %d changed, %d added, %d removed, %d moved\n",
		rep.Unchanged, rep.Changed, rep.Added, rep.Removed, rep.Moved)
	fmt.Printf("cost: %d replayed, %d re-analyzed (summary hit rate %.0f%%); wall %v\n",
		rep.Replayed, rep.Reanalyzed, 100*rep.SummaryHitRate, rep.Wall)
	for _, b := range rep.Binaries {
		if b.Status == dtaint.DiffUnchanged && b.Error == "" {
			continue
		}
		name := b.Path
		if b.OldPath != "" {
			name = b.OldPath + " -> " + b.Path
		}
		if b.Error != "" {
			fmt.Printf("  %-32s %-9s error: %s\n", name, b.Status, b.Error)
			continue
		}
		fmt.Printf("  %-32s %-9s %d new, %d fixed, %d persisting\n",
			name, b.Status, b.New, b.Fixed, b.Persisting)
		for _, f := range b.Findings {
			if f.Status != dtaint.FindingNew {
				continue
			}
			fmt.Printf("    NEW %s: %s -> %s in %s@%#x (%d paths)\n",
				f.Class, f.Source, f.Sink, f.SinkFunc, f.SinkAddr, f.Paths)
		}
	}
	fmt.Printf("findings: %d new, %d fixed, %d persisting\n",
		rep.NewFindings, rep.FixedFindings, rep.PersistingFindings)
	return rep.NewFindings, nil
}

func run(o cliOptions) (int, error) {
	if o.workers < 0 {
		return 0, fmt.Errorf("-workers must be >= 0 (0 uses GOMAXPROCS), got %d", o.workers)
	}
	raw, err := loadExecutable(o.fwPath, o.exePath, o.binPath)
	if err != nil {
		return 0, err
	}
	if o.dis {
		bin, err := image.Parse(raw)
		if err != nil {
			return 0, err
		}
		text, err := asm.Disassemble(bin)
		if err != nil {
			return 0, err
		}
		fmt.Print(text)
		return 0, nil
	}

	aopts, flushTrace, err := o.observability()
	if err != nil {
		return 0, err
	}
	vopts, err := o.vocabulary()
	if err != nil {
		return 0, err
	}
	aopts = append(aopts, vopts...)
	aopts = append(aopts, analyzerOptions(o.module, o.workers, o.noAlias, o.noSSE, o.noSim, o.noVRange)...)
	if o.sumDir != "" {
		store, err := dtaint.NewSummaryStore(0, o.sumDir)
		if err != nil {
			return 0, err
		}
		aopts = append(aopts, dtaint.WithSummaryStore(store))
	}
	rep, err := dtaint.New(aopts...).AnalyzeExecutable(raw)
	if err != nil {
		return 0, err
	}
	if err := flushTrace(); err != nil {
		return 0, err
	}
	vulnPaths := len(rep.VulnerablePaths())

	if o.mdOut != "" {
		f, err := os.Create(o.mdOut)
		if err != nil {
			return 0, err
		}
		if err := rep.WriteMarkdown(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Printf("wrote %s\n", o.mdOut)
		return vulnPaths, nil
	}
	if o.jsonOut {
		return vulnPaths, writeJSON(rep, o.showAll)
	}

	fmt.Printf("binary %s (%s): %d functions, %d blocks, %d call edges\n",
		rep.Binary, rep.Arch, rep.Functions, rep.Blocks, rep.CallEdges)
	fmt.Printf("analyzed %d functions, %d sink sites, %d indirect calls resolved\n",
		rep.FunctionsAnalyzed, rep.SinkCount, rep.IndirectResolved)
	fmt.Printf("symbolic analysis %v, data-flow generation %v (%d workers, %d components, critical path %d)\n\n",
		rep.SSATime, rep.DDGTime, rep.DDGWorkers, rep.SCCComponents, rep.CriticalPath)

	switch {
	case o.showAll:
		for _, f := range rep.Findings {
			fmt.Println(f)
		}
		fmt.Printf("\n%d findings (%d vulnerable paths, %d vulnerabilities)\n",
			len(rep.Findings), len(rep.VulnerablePaths()), len(rep.Vulnerabilities()))
	case o.paths:
		for _, f := range rep.VulnerablePaths() {
			fmt.Println(f)
		}
		fmt.Printf("\n%d vulnerable paths\n", len(rep.VulnerablePaths()))
	default:
		for _, f := range rep.Vulnerabilities() {
			fmt.Println(f)
		}
		fmt.Printf("\n%d vulnerabilities (%d paths)\n",
			len(rep.Vulnerabilities()), len(rep.VulnerablePaths()))
	}
	return vulnPaths, nil
}

// runTrace prints the per-function static symbolic analysis listing —
// the same rendering as the paper's Figure 6, with evaluated symbolic
// expressions per executed statement.
func runTrace(fwPath, exePath, binPath, fnName string) error {
	raw, err := loadExecutable(fwPath, exePath, binPath)
	if err != nil {
		return err
	}
	bin, err := image.Parse(raw)
	if err != nil {
		return err
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return err
	}
	fn := prog.ByName[fnName]
	if fn == nil {
		return fmt.Errorf("function %q not found", fnName)
	}
	tracker := taint.NewTracker()
	tracker.BeginFunction(fnName)
	opts := symexec.Options{
		Prototypes: taint.Prototypes(),
		Trace: func(addr uint32, line string) {
			fmt.Printf("%06X: %s\n", addr, line)
		},
	}
	fmt.Printf("; static symbolic analysis of %s (%s)\n", fnName, bin.Arch)
	sum := symexec.Analyze(fn, bin, tracker, opts)
	fmt.Printf("; %d states over %d blocks; %d definition pairs, %d constraints\n",
		sum.StatesExplored, sum.BlocksAnalyzed, len(sum.DefPairs), len(sum.Constraints))
	return nil
}

// jsonReport is the machine-readable output schema.
type jsonReport struct {
	Binary            string        `json:"binary"`
	Arch              string        `json:"arch"`
	Functions         int           `json:"functions"`
	Blocks            int           `json:"blocks"`
	CallEdges         int           `json:"callEdges"`
	FunctionsAnalyzed int           `json:"functionsAnalyzed"`
	SinkCount         int           `json:"sinkCount"`
	IndirectResolved  int           `json:"indirectResolved"`
	SSAMillis         int64         `json:"ssaMillis"`
	DDGMillis         int64         `json:"ddgMillis"`
	DDGWorkers        int           `json:"ddgWorkers"`
	SCCComponents     int           `json:"sccComponents"`
	CriticalPath      int           `json:"criticalPath"`
	Findings          []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	Class     string   `json:"class"`
	CWE       string   `json:"cwe"`
	Sink      string   `json:"sink"`
	SinkFunc  string   `json:"sinkFunc"`
	SinkAddr  uint32   `json:"sinkAddr"`
	Source    string   `json:"source"`
	Path      []string `json:"path"`
	Sanitized bool     `json:"sanitized"`
	Evidence  []string `json:"evidence,omitempty"`
}

func writeJSON(rep *dtaint.Report, includeSanitized bool) error {
	out := jsonReport{
		Binary:            rep.Binary,
		Arch:              rep.Arch,
		Functions:         rep.Functions,
		Blocks:            rep.Blocks,
		CallEdges:         rep.CallEdges,
		FunctionsAnalyzed: rep.FunctionsAnalyzed,
		SinkCount:         rep.SinkCount,
		IndirectResolved:  rep.IndirectResolved,
		SSAMillis:         rep.SSATime.Milliseconds(),
		DDGMillis:         rep.DDGTime.Milliseconds(),
		DDGWorkers:        rep.DDGWorkers,
		SCCComponents:     rep.SCCComponents,
		CriticalPath:      rep.CriticalPath,
	}
	for _, f := range rep.Findings {
		if f.Sanitized && !includeSanitized {
			continue
		}
		out.Findings = append(out.Findings, jsonFinding{
			Class:     string(f.Class),
			CWE:       f.CWE(),
			Sink:      f.Sink,
			SinkFunc:  f.SinkFunc,
			SinkAddr:  f.SinkAddr,
			Source:    f.Source,
			Path:      f.Path,
			Sanitized: f.Sanitized,
			Evidence:  f.Evidence,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func loadExecutable(fwPath, exePath, binPath string) ([]byte, error) {
	switch {
	case exePath != "":
		return os.ReadFile(exePath)
	case fwPath != "":
		data, err := os.ReadFile(fwPath)
		if err != nil {
			return nil, err
		}
		_, fs, err := firmware.Unpack(data)
		if err != nil {
			return nil, fmt.Errorf("unpack %s: %w", fwPath, err)
		}
		if binPath != "" {
			f, err := fs.Lookup(binPath)
			if err != nil {
				return nil, err
			}
			return f.Data, nil
		}
		for _, f := range fs.Files {
			if _, err := image.Parse(f.Data); err == nil {
				fmt.Fprintf(os.Stderr, "dtaint: auto-selected %s\n", f.Path)
				return f.Data, nil
			}
		}
		return nil, fmt.Errorf("no analyzable executable in %s (use -bin)", fwPath)
	default:
		return nil, fmt.Errorf("one of -fw or -exe is required")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dtaint"
	"dtaint/internal/corpus"
	"dtaint/internal/diff"
	"dtaint/internal/fleet"
	"dtaint/internal/sumstore"
)

func testFirmware(t *testing.T) []byte {
	t.Helper()
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func startTestServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg)
	s.start()
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.shutdown(5 * time.Second)
	})
	return s, ts
}

func postScan(t *testing.T, ts *httptest.Server, fw []byte) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(fw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/scan = %d, want 202", resp.StatusCode)
	}
	var ack struct{ ID, State string }
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.ID == "" || ack.State != stateQueued {
		t.Fatalf("ack = %+v", ack)
	}
	return ack.ID
}

func waitDone(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case stateDone:
			return v
		case stateFailed:
			t.Fatalf("job failed: %s", v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return jobView{}
}

func getReport(t *testing.T, ts *httptest.Server, id string) *fleet.ImageReport {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report = %d, want 200", resp.StatusCode)
	}
	var rep fleet.ImageReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// TestScanEndToEnd is the acceptance flow: POST an image, poll to done,
// fetch the report, re-POST and see cache hits.
func TestScanEndToEnd(t *testing.T) {
	cache, err := fleet.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, config{cache: cache})
	fw := testFirmware(t)

	id := postScan(t, ts, fw)
	v := waitDone(t, ts, id)
	if v.BinariesDone != v.BinariesTotal || v.BinariesTotal == 0 {
		t.Fatalf("progress = %d/%d", v.BinariesDone, v.BinariesTotal)
	}
	rep := getReport(t, ts, id)
	if rep.Product != "DIR-645" {
		t.Fatalf("product = %q", rep.Product)
	}
	if rep.Vulnerabilities == 0 || rep.Scanned == 0 {
		t.Fatalf("report: %d scanned, %d vulnerabilities, want > 0", rep.Scanned, rep.Vulnerabilities)
	}
	// The findings a direct library run produces must be what the wire
	// report carries.
	direct, err := dtaint.New().AnalyzeFirmware(fw, rep.Binaries[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vulnerabilities != len(direct.Vulnerabilities()) ||
		rep.VulnerablePaths != len(direct.VulnerablePaths()) {
		t.Fatalf("served %d/%d, direct run %d/%d",
			rep.Vulnerabilities, rep.VulnerablePaths,
			len(direct.Vulnerabilities()), len(direct.VulnerablePaths()))
	}

	// Second scan of the same image: all binaries served from cache.
	id2 := postScan(t, ts, fw)
	waitDone(t, ts, id2)
	rep2 := getReport(t, ts, id2)
	if rep2.Cached == 0 || rep2.Cache.Hits == 0 {
		t.Fatalf("second scan: cached=%d hits=%d, want > 0", rep2.Cached, rep2.Cache.Hits)
	}
	if rep2.Vulnerabilities != rep.Vulnerabilities {
		t.Fatalf("cached report diverged: %d vs %d", rep2.Vulnerabilities, rep.Vulnerabilities)
	}
}

// postMultipart POSTs /v1/scan as multipart/form-data with a firmware
// part and, when vocabJSON is non-empty, a vocab part.
func postMultipart(t *testing.T, ts *httptest.Server, fw []byte, vocabJSON string) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fp, err := mw.CreateFormFile("firmware", "image.fwimg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Write(fw); err != nil {
		t.Fatal(err)
	}
	if vocabJSON != "" {
		vp, err := mw.CreateFormFile("vocab", "vocab.json")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vp.Write([]byte(vocabJSON)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/scan", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestScanVocabOverride: a multipart scan with a sink-free vocabulary
// must report zero vulnerabilities on an image the default vocabulary
// flags, and the two jobs must not share cached results even though
// they scan byte-identical binaries through the same cache.
func TestScanVocabOverride(t *testing.T) {
	cache, err := fleet.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, config{cache: cache})
	fw := testFirmware(t)

	// Baseline raw-body scan under the default vocabulary.
	id := postScan(t, ts, fw)
	waitDone(t, ts, id)
	rep := getReport(t, ts, id)
	if rep.Vulnerabilities == 0 {
		t.Fatal("default vocabulary found nothing to compare against")
	}

	// Multipart scan with a vocabulary that declares sources only: the
	// cache already holds this image's reports, but the vocabulary digest
	// keys them apart, so this job recomputes and finds nothing.
	resp := postMultipart(t, ts, fw, `{"version": 1, "functions": [
		{"name": "read", "kind": "source",
		 "args": [{"type": "int"}, {"type": "char*", "role": "dest"}, {"type": "int", "role": "len"}]}]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("multipart POST = %d, want 202", resp.StatusCode)
	}
	var ack struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, ack.ID)
	rep2 := getReport(t, ts, ack.ID)
	if rep2.Vulnerabilities != 0 {
		t.Fatalf("sink-free vocabulary reported %d vulnerabilities", rep2.Vulnerabilities)
	}
	if rep2.Cached != 0 {
		t.Fatalf("vocab-override job served %d binaries from the default-vocab cache", rep2.Cached)
	}

	// A multipart scan without a vocab part behaves like the raw form —
	// and now it DOES hit the cache warmed by the baseline job.
	resp3 := postMultipart(t, ts, fw, "")
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("vocabless multipart POST = %d, want 202", resp3.StatusCode)
	}
	var ack3 struct{ ID string }
	if err := json.NewDecoder(resp3.Body).Decode(&ack3); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, ack3.ID)
	rep3 := getReport(t, ts, ack3.ID)
	if rep3.Vulnerabilities != rep.Vulnerabilities {
		t.Fatalf("multipart default-vocab scan diverged: %d vs %d", rep3.Vulnerabilities, rep.Vulnerabilities)
	}
	if rep3.Cached == 0 {
		t.Fatal("identical-vocabulary rescan missed the warm cache")
	}
}

// Malformed vocabularies are rejected with 400 at accept time, with
// the vocab package's precise error in the response body.
func TestScanVocabRejection(t *testing.T) {
	_, ts := startTestServer(t, config{})
	fw := testFirmware(t)
	cases := []struct {
		name, vocab, want string
	}{
		{"bad kind", `{"version": 1, "functions": [{"name": "f", "kind": "sinkhole"}]}`, `unknown kind "sinkhole"`},
		{"syntax error", "{\n  \"functions\": [,]\n}", "vocab:2"},
		{"wrong version", `{"version": 9, "functions": [{"name": "f", "kind": "model", "model": "nop"}]}`, "version 9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postMultipart(t, ts, fw, tc.vocab)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("malformed vocab POST = %d, want 400", resp.StatusCode)
			}
			var e struct{ Error string }
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, "invalid vocabulary") || !strings.Contains(e.Error, tc.want) {
				t.Fatalf("error = %q, want it to mention %q", e.Error, tc.want)
			}
		})
	}

	// A multipart POST without the firmware part is also a 400.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/scan", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("firmware-less multipart POST = %d, want 400", resp.StatusCode)
	}
}

// postDiff POSTs /v1/diff as multipart/form-data with old and new image
// parts and returns the raw response.
func postDiff(t *testing.T, ts *httptest.Server, oldFw, newFw []byte) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for _, part := range []struct {
		name string
		data []byte
	}{{"old", oldFw}, {"new", newFw}} {
		fp, err := mw.CreateFormFile(part.name, part.name+".fwimg")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fp.Write(part.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/diff", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDiffEndToEnd: scan the old version to warm the shared cache, then
// diff old→new over the wire and check that only the delta was
// re-analyzed and the findings classified.
func TestDiffEndToEnd(t *testing.T) {
	vp, err := corpus.BuildVersionPair(corpus.VersionPairSpec{
		Binaries: 3, Mutated: 1, SharedFuncs: 10, TailFuncs: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := fleet.NewCache(256, "")
	if err != nil {
		t.Fatal(err)
	}
	store, err := sumstore.NewStore(4096, "")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, config{cache: cache, sumStore: store})

	// Nightly scan of the old version through the same server.
	waitDone(t, ts, postScan(t, ts, vp.Old))

	resp := postDiff(t, ts, vp.Old, vp.New)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/diff = %d, want 202", resp.StatusCode)
	}
	var ack struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, ts, ack.ID)
	if v.Kind != kindDiff {
		t.Fatalf("job kind = %q, want %q", v.Kind, kindDiff)
	}

	rresp, err := http.Get(ts.URL + "/v1/jobs/" + ack.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("GET diff report = %d, want 200", rresp.StatusCode)
	}
	var rep diff.Report
	if err := json.NewDecoder(rresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if want := vp.Spec.Mutated + 1; rep.Reanalyzed != want {
		t.Fatalf("Reanalyzed = %d, want %d (mutated + added only)", rep.Reanalyzed, want)
	}
	if rep.NewFindings != vp.NewVulns || rep.FixedFindings != vp.FixedVulns ||
		rep.PersistingFindings != vp.PersistingVulns {
		t.Fatalf("findings new/fixed/persisting = %d/%d/%d, want %d/%d/%d",
			rep.NewFindings, rep.FixedFindings, rep.PersistingFindings,
			vp.NewVulns, vp.FixedVulns, vp.PersistingVulns)
	}
	if rep.SummaryHitRate == 0 {
		t.Fatal("diff job did not replay old-version function summaries")
	}
}

// Malformed diff uploads are rejected at accept time.
func TestDiffBadRequests(t *testing.T) {
	_, ts := startTestServer(t, config{})

	// Non-multipart body.
	resp, err := http.Post(ts.URL+"/v1/diff", "application/octet-stream", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw-body diff POST = %d, want 400", resp.StatusCode)
	}

	// Missing "new" part.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fp, err := mw.CreateFormFile("old", "old.fwimg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Write(testFirmware(t)); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/diff", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("one-part diff POST = %d, want 400", resp.StatusCode)
	}
	var e struct{ Error string }
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, `"new"`) {
		t.Fatalf("error = %q, want it to name the missing part", e.Error)
	}
}

// Queue-full shedding is shared between /v1/scan and /v1/diff: both
// answer 429 with a Retry-After hint.
func TestDiffQueueSaturation(t *testing.T) {
	// No runner: jobs stay queued, so the second POST must shed.
	s := newServer(config{queueCap: 1})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	fw := testFirmware(t)

	first := postDiff(t, ts, fw, fw)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first diff POST = %d, want 202", first.StatusCode)
	}
	resp := postDiff(t, ts, fw, fw)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated diff POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestQueueSaturation(t *testing.T) {
	// No runner: jobs stay queued, so the second POST must shed.
	s := newServer(config{queueCap: 1})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	fw := testFirmware(t)

	postScan(t, ts, fw)
	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(fw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The shed job must not linger in the job table.
	var m metricsView
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs[stateQueued] != 1 || m.QueueDepth != 1 || m.QueueCap != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestJobNotFoundAndNotReady(t *testing.T) {
	s := newServer(config{queueCap: 2}) // runner not started: job stays queued
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}

	id := postScan(t, ts, testFirmware(t))
	resp, err = http.Get(ts.URL + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished report = %d, want 409", resp.StatusCode)
	}
}

func TestBadUploads(t *testing.T) {
	_, ts := startTestServer(t, config{})

	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty upload = %d, want 400", resp.StatusCode)
	}

	// Junk bytes queue fine but fail during the scan; the job surfaces
	// the unpack error.
	resp, err = http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(ts.URL + "/v1/jobs/" + ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if v.State == stateFailed {
			rr, err := http.Get(ts.URL + "/v1/jobs/" + ack.ID + "/report")
			if err != nil {
				t.Fatal(err)
			}
			rr.Body.Close()
			if rr.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("failed job report = %d, want 422", rr.StatusCode)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("junk scan never failed")
}

func TestUploadLimit(t *testing.T) {
	_, ts := startTestServer(t, config{maxUpload: 16})
	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream",
		bytes.NewReader(bytes.Repeat([]byte("x"), 64)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize upload = %d, want 413", resp.StatusCode)
	}
}

func TestGracefulShutdownDrainsQueue(t *testing.T) {
	s := newServer(config{queueCap: 4})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	id := postScan(t, ts, testFirmware(t))

	// Runner never started; shutdown must fail the queued job rather
	// than leave it queued forever.
	s.start()
	s.shutdown(5 * time.Second)

	j, ok := s.lookup(id)
	if !ok {
		t.Fatal("job vanished")
	}
	s.mu.Lock()
	state, errMsg := j.state, j.err
	s.mu.Unlock()
	if state == stateDone {
		return // runner got to it before the stop signal: also fine
	}
	if state != stateFailed || errMsg == "" {
		t.Fatalf("queued job after shutdown: state=%q err=%q, want failed", state, errMsg)
	}
}

// Command dtaintd serves the fleet-scale scanning subsystem over HTTP:
// upload a firmware image, poll the job, fetch the per-image report.
//
//	dtaintd -addr :8214 -cache-dir /var/cache/dtaint
//
//	curl -X POST --data-binary @dir645.fwimg http://localhost:8214/v1/scan
//	curl -X POST -F firmware=@dir645.fwimg -F vocab=@vendor.json http://localhost:8214/v1/scan
//	curl -X POST -F old=@fw-1.0.0.fwimg -F new=@fw-1.0.1.fwimg http://localhost:8214/v1/diff
//	curl http://localhost:8214/v1/jobs/job-000001
//	curl http://localhost:8214/v1/jobs/job-000001/report
//	curl http://localhost:8214/v1/metrics
//
// POST /v1/diff queues a differential scan of two firmware versions
// (multipart, required "old" and "new" parts, optional "vocab" part).
// It shares the scan queue, the report cache, and the function-summary
// store: binaries unchanged since a prior scan replay from cache,
// changed ones re-analyze with unchanged functions replaying from the
// store, and the job's report classifies every finding as new, fixed,
// or persisting across the two versions.
//
// The second upload form is multipart: the optional vocab part is a
// JSON source/sink/sanitizer vocabulary (DESIGN.md §3.5) overriding
// the server's default for that job only; -vocab file.json changes
// the server-wide default. Malformed specs answer 400 at accept time
// with a line-precise error. The vocabulary digest is part of the
// cache fingerprints, so jobs with different vocabularies never share
// cached results.
//
// Jobs run one at a time in arrival order; each job fans its image's
// binaries out across -workers analyzer goroutines. The job queue is
// bounded (-queue); a full queue answers 429 so load sheds at the edge
// instead of piling up in memory. Reports are cached content-addressed
// (SHA-256 of the binary plus the analyzer-options fingerprint), so
// re-scanning an image — or a fleet of images sharing binaries — is
// served from cache; -cache-dir persists the cache across restarts.
// Below the report cache, a function-summary store shared across all
// jobs replays per-function analysis for code recurring across distinct
// binaries (same SDK, same libc); -summary-size bounds its in-memory
// tier and -summary-dir persists it across restarts. SIGINT/SIGTERM
// shuts down gracefully: the listener stops, the running job drains,
// queued jobs are failed with a shutdown error.
//
// Live telemetry: every job appends typed, sequence-numbered events
// (stage/binary lifecycle, decile progress with ETA, findings, stalls)
// to a bounded in-memory journal (-journal sets the ring size).
// GET /v1/jobs/{id}/events streams one job as Server-Sent Events —
// buffered history first, then live — closing after the job's terminal
// event; a reconnecting client resumes exactly where it left off by
// sending the standard Last-Event-ID header. GET /v1/events is the
// all-jobs firehose. -stall-timeout arms a per-job watchdog: a job
// journaling no events for that long has its in-flight binaries
// abandoned (reported as status "stalled", never an empty success) and,
// with -debug-dir, a diagnostic bundle written to disk. GET /healthz is
// the liveness probe; GET /readyz answers 503 once graceful drain
// begins (-drain-notice holds the listener open so balancers see the
// flip) or when the job queue is saturated.
//
// Observability: /v1/metrics serves the service counters plus the
// analysis registry as JSON, or as Prometheus text exposition when the
// client sends "Accept: text/plain" (what Prometheus scrapers do).
// -log-level/-log-format select structured stderr logging (log/slog)
// with per-job and per-binary attrs. -pprof-addr exposes the standard
// net/http/pprof profiles on a second listener kept off the public API
// address:
//
//	dtaintd -addr :8214 -pprof-addr 127.0.0.1:6060 -log-format json
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"dtaint/internal/fleet"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
	"dtaint/internal/sumstore"
	"dtaint/internal/taint"
	"dtaint/internal/vocab"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8214", "listen address (port 0 picks an ephemeral port)")
		workers     = flag.Int("workers", 0, "binaries analyzed concurrently per job (0 = GOMAXPROCS)")
		queueCap    = flag.Int("queue", 16, "maximum queued scan jobs before 429")
		jobTimeout  = flag.Duration("binary-timeout", 10*time.Minute, "per-binary analysis timeout (0 = none)")
		cacheSize   = flag.Int("cache-size", 1024, "in-memory report cache entries")
		cacheDir    = flag.String("cache-dir", "", "persistent report cache directory (empty = memory only)")
		sumSize     = flag.Int("summary-size", 4096, "in-memory function-summary store entries")
		sumDir      = flag.String("summary-dir", "", "persistent function-summary store directory (empty = memory only)")
		maxUpload   = flag.Int64("max-upload", 256<<20, "maximum firmware upload bytes")
		noAlias     = flag.Bool("no-alias", false, "disable pointer-alias recognition (Algorithm 1)")
		noSSE       = flag.Bool("no-sse", false, "disable structured-symbolic-expression alias classes (fall back to Algorithm 1 + pure structsim)")
		noSim       = flag.Bool("no-structsim", false, "disable data-structure similarity resolution")
		vocabPath   = flag.String("vocab", "", "default source/sink/sanitizer vocabulary spec (JSON; empty = embedded default)")
		drainWait   = flag.Duration("drain", 5*time.Minute, "shutdown grace for the running job")
		drainNotice = flag.Duration("drain-notice", 0, "delay between flipping /readyz to 503 and stopping the listener")
		journalSize = flag.Int("journal", events.DefaultJournalSize, "event journal ring size for SSE streaming (0 = telemetry off)")
		stallWait   = flag.Duration("stall-timeout", 0, "per-job stall watchdog deadline: no telemetry events for this long abandons the binary (0 = off)")
		debugDir    = flag.String("debug-dir", "", "directory receiving one diagnostic bundle per watchdog stall (empty = off)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	)
	flag.Parse()
	opts := serveOptions{
		addr: *addr, workers: *workers, queueCap: *queueCap,
		cacheSize: *cacheSize, cacheDir: *cacheDir, maxUpload: *maxUpload,
		sumSize: *sumSize, sumDir: *sumDir,
		jobTimeout: *jobTimeout, drainWait: *drainWait, drainNotice: *drainNotice,
		journalSize: *journalSize, stallWait: *stallWait, debugDir: *debugDir,
		noAlias: *noAlias, noSSE: *noSSE, noSim: *noSim, vocabPath: *vocabPath,
		logLevel: *logLevel, logFormat: *logFormat, pprofAddr: *pprofAddr,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "dtaintd:", err)
		os.Exit(1)
	}
}

// serveOptions carries the parsed flags into run.
type serveOptions struct {
	addr        string
	workers     int
	queueCap    int
	cacheSize   int
	cacheDir    string
	sumSize     int
	sumDir      string
	maxUpload   int64
	jobTimeout  time.Duration
	drainWait   time.Duration
	drainNotice time.Duration
	journalSize int
	stallWait   time.Duration
	debugDir    string
	noAlias     bool
	noSSE       bool
	noSim       bool
	vocabPath   string
	logLevel    string
	logFormat   string
	pprofAddr   string
}

func run(o serveOptions) error {
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", o.workers)
	}
	logger, err := obs.NewLogger(os.Stderr, o.logLevel, o.logFormat)
	if err != nil {
		return err
	}
	cache, err := fleet.NewCache(o.cacheSize, o.cacheDir)
	if err != nil {
		return err
	}
	store, err := sumstore.NewStore(o.sumSize, o.sumDir)
	if err != nil {
		return err
	}
	cfg := config{
		workers:       o.workers,
		queueCap:      o.queueCap,
		binaryTimeout: o.jobTimeout,
		maxUpload:     o.maxUpload,
		cache:         cache,
		sumStore:      store,
		metrics:       obs.NewRegistry(),
		log:           logger,
		stallTimeout:  o.stallWait,
		debugDir:      o.debugDir,
	}
	if o.journalSize > 0 {
		cfg.journal = events.NewJournal(o.journalSize)
	}
	cfg.analysis.DisableAlias = o.noAlias
	cfg.analysis.DisableSSE = o.noSSE
	cfg.analysis.DisableStructSim = o.noSim
	if o.vocabPath != "" {
		spec, err := vocab.Load(o.vocabPath)
		if err != nil {
			return err
		}
		v, err := taint.CompileVocabulary(spec)
		if err != nil {
			return err
		}
		cfg.analysis.Vocab = v
	}
	cfg.analysis.Metrics = cfg.metrics
	cfg.analysis.Log = logger

	s := newServer(cfg)
	s.start()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// The ephemeral-port form ("host:0") is how the smoke test and
	// scripted clients find the server: this line is the contract.
	fmt.Printf("dtaintd: listening on http://%s\n", ln.Addr())

	if o.pprofAddr != "" {
		pln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Printf("dtaintd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		// The blank net/http/pprof import registered its handlers on
		// http.DefaultServeMux; serve that mux on the side listener only,
		// so profiles never leak onto the public API address.
		go func() { _ = http.Serve(pln, http.DefaultServeMux) }()
	}

	srv := &http.Server{Handler: s.handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("dtaintd: %v, draining\n", sig)
		// Flip /readyz to 503 first, then hold the listener open for the
		// notice window so load balancers (and the smoke test) observe
		// the not-ready answer before connections start being refused.
		s.setDraining()
		if o.drainNotice > 0 {
			time.Sleep(o.drainNotice)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	// Shutdown waits for idle connections but not for open SSE streams;
	// close them outright so drain cannot hang on a watching client.
	_ = srv.Close()
	s.shutdown(o.drainWait)
	fmt.Println("dtaintd: stopped")
	return nil
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dtaint/internal/obs"
)

// /v1/metrics must content-negotiate: Prometheus scrapers (Accept:
// text/plain) get text exposition, everyone else the JSON view.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := config{metrics: reg}
	cfg.analysis.Metrics = reg
	_, ts := startTestServer(t, cfg)

	id := postScan(t, ts, testFirmware(t))
	waitDone(t, ts, id)

	// Prometheus text form.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dtaintd_jobs_accepted_total counter",
		"dtaintd_jobs_accepted_total 1",
		"dtaintd_jobs_done_total 1",
		"# TYPE dtaintd_queue_depth gauge",
		"dtaint_fn_ssa_seconds_bucket{le=",
		"dtaint_fleet_binaries_total{status=\"ok\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus exposition lacks %q:\n%s", want, text)
		}
	}

	// JSON form keeps the legacy keys and gains the counters + registry.
	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs == nil || m.QueueCap == 0 {
		t.Fatalf("legacy fields missing: %+v", m)
	}
	if m.JobsAccepted != 1 || m.JobsStarted != 1 || m.JobsDone != 1 || m.JobsFailed != 0 {
		t.Fatalf("counters = accepted %d started %d done %d failed %d",
			m.JobsAccepted, m.JobsStarted, m.JobsDone, m.JobsFailed)
	}
	if len(m.Metrics) == 0 {
		t.Fatal("registry snapshot missing from JSON view")
	}
}

// The lifetime counters must be monotonic and mutually consistent in
// every single response: done+failed can never exceed started, and
// started can never exceed accepted.
func TestMetricsSnapshotConsistent(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := config{metrics: reg}
	cfg.analysis.Metrics = reg
	_, ts := startTestServer(t, cfg)
	fw := testFirmware(t)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/v1/metrics")
			if err != nil {
				return
			}
			var m metricsView
			if json.NewDecoder(resp.Body).Decode(&m) == nil {
				if m.JobsDone+m.JobsFailed > m.JobsStarted || m.JobsStarted > m.JobsAccepted {
					t.Errorf("inconsistent snapshot: %+v", m)
				}
			}
			resp.Body.Close()
		}
	}()
	for i := 0; i < 3; i++ {
		waitDone(t, ts, postScan(t, ts, fw))
	}
	close(stop)
	<-done
}

// Without a registry the handler behaves exactly as with one — obs
// handles are nil-safe, so there is no availability branch: a
// text/plain client gets a valid (empty) Prometheus exposition and a
// JSON client gets the legacy view with no registry snapshot.
func TestMetricsWithoutRegistry(t *testing.T) {
	_, ts := startTestServer(t, config{})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	if len(body) != 0 {
		t.Fatalf("nil registry must expose zero series, got %q", body)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("JSON view: %v", err)
	}
	if len(m.Metrics) != 0 {
		t.Fatalf("nil registry produced a snapshot: %+v", m.Metrics)
	}
}

// The pprof side listener serves the standard profile index. The
// handlers live on http.DefaultServeMux via the blank net/http/pprof
// import; this exercises the same mux run() serves on -pprof-addr.
func TestPprofMux(t *testing.T) {
	ts := httptest.NewServer(http.DefaultServeMux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dtaint/internal/obs/events"
)

type sseFrame struct {
	id    uint64
	event string
	data  string
}

// parseSSE reads Server-Sent-Events frames until the stream ends.
func parseSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

func journalServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return startTestServer(t, config{queueCap: 4, journal: events.NewJournal(0)})
}

// The SSE acceptance flow: stream a scan job's events and see strictly
// ascending ids, progress events, and a terminal job.done that closes
// the stream.
func TestJobEventsStream(t *testing.T) {
	_, ts := journalServer(t)
	id := postScan(t, ts, testFirmware(t))

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	frames := parseSSE(t, resp.Body)
	if len(frames) == 0 {
		t.Fatal("stream delivered no frames")
	}
	var last uint64
	var sawProgress bool
	for _, f := range frames {
		if f.event == "dropped" {
			continue
		}
		if f.id <= last {
			t.Fatalf("event ids not strictly ascending: %d after %d", f.id, last)
		}
		last = f.id
		var ev events.ScanEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame data not a ScanEvent: %v\n%s", err, f.data)
		}
		if ev.Job != id {
			t.Fatalf("job stream leaked event for job %q: %s", ev.Job, f.data)
		}
		if ev.Type == events.TypeProgress {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatal("no progress event in the stream")
	}
	if final := frames[len(frames)-1]; final.event != string(events.TypeJobDone) {
		t.Fatalf("final frame = %q, want %q", final.event, events.TypeJobDone)
	}
	// The job state flipped no later than its terminal event reached us.
	v := waitDone(t, ts, id)
	if v.State != stateDone {
		t.Fatalf("job state = %q after terminal event", v.State)
	}
}

// Last-Event-ID resumes a dropped connection exactly where it left off:
// the replay starts after the acknowledged id and still ends in the
// terminal event.
func TestJobEventsResumeAfterDrop(t *testing.T) {
	_, ts := journalServer(t)
	id := postScan(t, ts, testFirmware(t))
	waitDone(t, ts, id)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	full := parseSSE(t, resp.Body)
	resp.Body.Close()
	if len(full) < 3 {
		t.Fatalf("want >= 3 frames to split a resume across, got %d", len(full))
	}

	// Drop the connection "after" the middle event and resume.
	mid := full[len(full)/2]
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(mid.id, 10))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumed := parseSSE(t, resp.Body)
	resp.Body.Close()

	var wantTail []sseFrame
	for _, f := range full {
		if f.id > mid.id {
			wantTail = append(wantTail, f)
		}
	}
	if len(resumed) != len(wantTail) {
		t.Fatalf("resume replayed %d frames, want %d", len(resumed), len(wantTail))
	}
	for i, f := range resumed {
		if f.id != wantTail[i].id || f.event != wantTail[i].event || f.data != wantTail[i].data {
			t.Fatalf("resume frame %d = %+v, want %+v", i, f, wantTail[i])
		}
	}
	if final := resumed[len(resumed)-1]; final.event != string(events.TypeJobDone) {
		t.Fatalf("resumed stream final frame = %q, want %q", final.event, events.TypeJobDone)
	}

	// A malformed Last-Event-ID is rejected before any streaming.
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID = %d, want 400", resp.StatusCode)
	}
}

// The firehose multiplexes every job; a consumer can filter by job id.
func TestEventsFirehose(t *testing.T) {
	_, ts := journalServer(t)
	id := postScan(t, ts, testFirmware(t))
	waitDone(t, ts, id)

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The firehose never terminates on its own; read until the context
	// deadline tears the connection down.
	frames := parseSSE(t, resp.Body)
	var sawJob bool
	for _, f := range frames {
		var ev events.ScanEvent
		if f.event != "dropped" && json.Unmarshal([]byte(f.data), &ev) == nil && ev.Job == id {
			sawJob = true
		}
	}
	if !sawJob {
		t.Fatalf("firehose replayed no events for job %s (%d frames)", id, len(frames))
	}
}

func TestJobEventsUnavailable(t *testing.T) {
	// Journal enabled, job unknown: 404.
	_, ts := journalServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events = %d, want 404", resp.StatusCode)
	}

	// Journal disabled: 501 with a hint, even for a real job.
	_, bare := startTestServer(t, config{queueCap: 4})
	id := postScan(t, bare, testFirmware(t))
	resp, err = http.Get(bare.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("disabled journal events = %d, want 501", resp.StatusCode)
	}
	resp, err = http.Get(bare.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("disabled journal firehose = %d, want 501", resp.StatusCode)
	}
}

// Liveness is unconditional; readiness flips to 503 while draining and
// while the queue is saturated.
func TestHealthzReadyz(t *testing.T) {
	s, ts := journalServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	s.setDraining()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.Ready || body.Reason != "draining" {
		t.Fatalf("draining readyz = %d %+v, want 503/draining", resp.StatusCode, body)
	}
	// Liveness still answers while draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200", resp.StatusCode)
	}

	// A server with no runner and a full queue is not ready either.
	stuck := newServer(config{queueCap: 1})
	tss := httptest.NewServer(stuck.handler())
	defer tss.Close()
	postScan(t, tss, testFirmware(t))
	resp, err = http.Get(tss.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.Reason != "queue saturated" {
		t.Fatalf("saturated readyz = %d %+v, want 503/queue saturated", resp.StatusCode, body)
	}
}

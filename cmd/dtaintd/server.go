package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtaint/internal/dataflow"
	"dtaint/internal/diff"
	"dtaint/internal/fleet"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
	"dtaint/internal/sumstore"
	"dtaint/internal/taint"
	"dtaint/internal/vocab"
)

// config tunes the scan service.
type config struct {
	// workers is the per-job orchestrator pool size (0 = GOMAXPROCS).
	workers int
	// queueCap bounds the job queue; a full queue answers 429.
	queueCap int
	// binaryTimeout caps one binary's analysis inside a job.
	binaryTimeout time.Duration
	// maxUpload bounds the accepted firmware size in bytes.
	maxUpload int64
	// cache is the shared report cache (nil = uncached).
	cache *fleet.Cache
	// sumStore is the shared function-summary store (nil = off); every
	// job's binaries replay per-function analysis through it.
	sumStore *sumstore.Store
	// analysis configures every binary analysis.
	analysis dataflow.Options
	// metrics is the service registry /v1/metrics exposes; the analysis
	// pipeline shares it via analysis.Metrics (nil = registry off, only
	// the legacy JSON counters are served).
	metrics *obs.Registry
	// log receives job lifecycle lines (nil = logging off).
	log *slog.Logger
	// journal is the live-telemetry event ring every job appends to and
	// the SSE endpoints stream from (nil = telemetry off).
	journal *events.Journal
	// stallTimeout arms a per-job stall watchdog over the journal
	// (0 = off); debugDir receives one diagnostic bundle per stall.
	stallTimeout time.Duration
	debugDir     string
}

// Job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
	// stateStalled: the scan finished but the stall watchdog abandoned
	// one or more binaries — a distinct terminal state so a killed
	// analysis never reads as a clean, empty success.
	stateStalled = "stalled"
)

// Job kinds.
const (
	kindScan = "scan"
	kindDiff = "diff"
)

// job is one firmware scan or diff moving through the queue. Both kinds
// share the table, the queue, and the single runner: a diff is just a
// job whose payload is two images and whose result is a diff report.
type job struct {
	id       string
	kind     string
	state    string
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	done     int // analysis units completed so far
	total    int // total analysis units
	stalled  int // binaries the stall watchdog abandoned
	data     []byte
	// newData is the diff job's new-version image (nil for scans; data
	// then holds the old version).
	newData []byte
	// vocab is this job's request-scoped vocabulary override (nil =
	// server default). Carrying the compiled form means a malformed
	// spec was already rejected with 400 at accept time.
	vocab      *taint.Vocabulary
	report     *fleet.ImageReport
	diffReport *diff.Report
}

// jobView is the JSON shape of a job's status.
type jobView struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// BinariesDone/BinariesTotal report scan progress while running.
	BinariesDone  int `json:"binariesDone"`
	BinariesTotal int `json:"binariesTotal"`
	// BinariesStalled counts binaries the stall watchdog abandoned.
	BinariesStalled int `json:"binariesStalled,omitempty"`
}

// metricsView is the JSON shape of /v1/metrics. The jobs/queueDepth/
// queueCap keys are the original wire contract; the lifetime counters
// and the registry dump are additive.
type metricsView struct {
	Jobs       map[string]int    `json:"jobs"`
	QueueDepth int               `json:"queueDepth"`
	QueueCap   int               `json:"queueCap"`
	Cache      *fleet.CacheStats `json:"cache,omitempty"`
	// JobsAccepted/Started/Done/Failed are lifetime counters read in the
	// same critical section as everything above, so done can never exceed
	// started in one response.
	JobsAccepted uint64 `json:"jobsAccepted"`
	JobsStarted  uint64 `json:"jobsStarted"`
	JobsDone     uint64 `json:"jobsDone"`
	JobsFailed   uint64 `json:"jobsFailed"`
	// Metrics is the full registry snapshot (analysis histograms, fleet
	// counters), absent when the registry is off.
	Metrics []obs.MetricSnapshot `json:"metrics,omitempty"`
}

// server owns the job table, the bounded queue, and the single runner
// goroutine that executes jobs in arrival order (each job is internally
// parallel across its binaries).
type server struct {
	cfg config

	mu   sync.Mutex
	jobs map[string]*job
	seq  int
	// Lifetime job counters, authoritative under mu. /v1/metrics reads
	// them (and everything else it reports) in one critical section —
	// the consistent-snapshot fix — and mirrors them into the registry
	// at scrape time.
	jobsAccepted uint64
	jobsStarted  uint64
	jobsDone     uint64
	jobsFailed   uint64

	queue      chan *job
	stop       chan struct{}
	runnerDone chan struct{}

	// draining flips when graceful shutdown begins; /readyz answers 503
	// from then on so load balancers stop routing new work here.
	draining atomic.Bool

	runCtx    context.Context
	runCancel context.CancelFunc
}

func newServer(cfg config) *server {
	if cfg.queueCap <= 0 {
		cfg.queueCap = 16
	}
	if cfg.maxUpload <= 0 {
		cfg.maxUpload = 256 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &server{
		cfg:        cfg,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.queueCap),
		stop:       make(chan struct{}),
		runnerDone: make(chan struct{}),
		runCtx:     ctx,
		runCancel:  cancel,
	}
}

// start launches the runner goroutine.
func (s *server) start() {
	go s.run()
}

// setDraining flips /readyz to 503 ahead of the actual listener
// shutdown, giving load balancers a window to stop routing here.
func (s *server) setDraining() { s.draining.Store(true) }

// shutdown drains gracefully: the in-flight job finishes, queued jobs
// are failed with a shutdown error, and the runner exits. If the runner
// does not drain within wait, the run context is cancelled so the
// current job's remaining binaries are skipped.
func (s *server) shutdown(wait time.Duration) {
	s.setDraining()
	close(s.stop)
	select {
	case <-s.runnerDone:
	case <-time.After(wait):
		s.runCancel()
		<-s.runnerDone
	}
}

func (s *server) run() {
	defer close(s.runnerDone)
	for {
		select {
		case <-s.stop:
			// Drain the queue: everything not yet started is failed
			// deterministically rather than silently dropped.
			for {
				select {
				case j := <-s.queue:
					s.finishJob(j, nil, nil, fmt.Errorf("server shutting down"))
				default:
					return
				}
			}
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *server) runJob(j *job) {
	s.mu.Lock()
	j.state = stateRunning
	j.started = time.Now()
	s.jobsStarted++
	data, newData := j.data, j.newData
	j.data, j.newData = nil, nil // the job owns the bytes now; drop the queue's copies early
	s.mu.Unlock()
	if s.cfg.log != nil {
		s.cfg.log.Info("job started", "job", j.id, "kind", j.kind, "bytes", len(data)+len(newData))
	}

	aopts := s.cfg.analysis
	if aopts.Log != nil {
		aopts.Log = aopts.Log.With("job", j.id)
	}
	// Every job gets its own tracer bridged into the shared journal, so
	// pipeline spans become job-scoped telemetry events without two
	// jobs' spans ever mixing. Nil journal → nil emitter → every emit
	// and the bridge registration below are no-ops.
	em := s.cfg.journal.Emitter(j.id)
	if em != nil {
		tr := obs.NewTracer()
		events.Bridge(tr, em)
		aopts.Tracer = tr
		aopts.Events = em
	}
	em.Emit(events.ScanEvent{Type: events.TypeJobStarted,
		Attrs: map[string]any{"kind": j.kind}})
	if j.vocab != nil {
		// Per-request override beats the server default. The vocabulary
		// digest is part of the report-cache and summary-store
		// fingerprints, so a job with a custom vocabulary can never be
		// served results computed under a different one.
		aopts.Vocab = j.vocab
	}
	progress := func(done, total int) {
		s.mu.Lock()
		j.done, j.total = done, total
		s.mu.Unlock()
	}
	if j.kind == kindDiff {
		drep, err := diff.Diff(s.runCtx, data, newData, diff.Options{
			Workers:          s.cfg.workers,
			PerBinaryTimeout: s.cfg.binaryTimeout,
			Analysis:         aopts,
			Cache:            s.cfg.cache,
			SummaryStore:     s.cfg.sumStore,
			Progress:         progress,
		})
		s.finishJob(j, nil, drep, err)
		return
	}
	rep, err := fleet.ScanImage(s.runCtx, data, fleet.Options{
		Workers:          s.cfg.workers,
		PerBinaryTimeout: s.cfg.binaryTimeout,
		Analysis:         aopts,
		Cache:            s.cfg.cache,
		SummaryStore:     s.cfg.sumStore,
		Progress:         progress,
		StallTimeout:     s.cfg.stallTimeout,
		DebugDir:         s.cfg.debugDir,
	})
	s.finishJob(j, rep, nil, err)
}

func (s *server) finishJob(j *job, rep *fleet.ImageReport, drep *diff.Report, err error) {
	// The terminal event is journaled BEFORE the job state flips: an SSE
	// handler that subscribes and then sees a terminal state is thereby
	// guaranteed the job.done/job.failed event is already in (or before)
	// its subscription window — never still in flight.
	em := s.cfg.journal.Emitter(j.id)
	switch {
	case err != nil:
		em.Emit(events.ScanEvent{Type: events.TypeJobFailed,
			Attrs: map[string]any{"error": err.Error()}})
	case rep != nil:
		em.Emit(events.ScanEvent{Type: events.TypeJobDone, Attrs: map[string]any{
			"candidates": rep.Candidates, "vulnerabilities": rep.Vulnerabilities,
			"stalled": rep.Stalled}})
	case drep != nil:
		em.Emit(events.ScanEvent{Type: events.TypeJobDone, Attrs: map[string]any{
			"new": drep.NewFindings, "fixed": drep.FixedFindings,
			"persisting": drep.PersistingFindings}})
	default:
		em.Emit(events.ScanEvent{Type: events.TypeJobDone})
	}

	s.mu.Lock()
	j.finished = time.Now()
	elapsed := j.finished.Sub(j.started)
	j.data, j.newData = nil, nil
	if err != nil {
		j.state = stateFailed
		j.err = err.Error()
		s.jobsFailed++
	} else {
		j.state = stateDone
		j.report = rep
		j.diffReport = drep
		if rep != nil {
			j.done, j.total = rep.Candidates, rep.Candidates
			if j.stalled = rep.Stalled; j.stalled > 0 {
				j.state = stateStalled
			}
		}
		s.jobsDone++
	}
	s.mu.Unlock()
	if s.cfg.log == nil {
		return
	}
	if err != nil {
		s.cfg.log.Error("job failed", "job", j.id, "error", err.Error())
		return
	}
	if drep != nil {
		s.cfg.log.Info("job done", "job", j.id, "kind", kindDiff,
			"replayed", drep.Replayed, "reanalyzed", drep.Reanalyzed,
			"new", drep.NewFindings, "fixed", drep.FixedFindings,
			"persisting", drep.PersistingFindings,
			"seconds", elapsed.Seconds())
		return
	}
	s.cfg.log.Info("job done", "job", j.id,
		"candidates", rep.Candidates, "vulnerabilities", rep.Vulnerabilities,
		"seconds", elapsed.Seconds())
}

// handler routes the v1 API.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", s.handleScan)
	mux.HandleFunc("POST /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while the server should
// receive traffic, 503 once graceful drain has begun or the job queue
// is saturated (new scans would bounce with 429 anyway).
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSONStatus(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "draining"})
		return
	}
	depth, capacity := len(s.queue), cap(s.queue)
	if depth >= capacity {
		writeJSONStatus(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "queue saturated",
				"queueDepth": depth, "queueCap": capacity})
		return
	}
	writeJSON(w, map[string]any{"ready": true, "queueDepth": depth, "queueCap": capacity})
}

// handleJobEvents streams one job's telemetry as Server-Sent Events:
// buffered journal history first (from Last-Event-ID when the client is
// resuming a dropped connection), then live events until the job's
// terminal event (job.done/job.failed) or the client disconnects.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if s.cfg.journal == nil {
		httpError(w, http.StatusNotImplemented, "event journal disabled (-journal 0)")
		return
	}
	s.streamEvents(w, r, id)
}

// handleEvents is the firehose: every job's events, no terminal close.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.cfg.journal == nil {
		httpError(w, http.StatusNotImplemented, "event journal disabled (-journal 0)")
		return
	}
	s.streamEvents(w, r, "")
}

// streamEvents writes the SSE stream. job filters to one job and closes
// after its terminal event; empty streams everything until disconnect.
// Each frame is "id: <seq>\nevent: <type>\ndata: <json>\n\n", so a
// reconnecting client's Last-Event-ID resumes exactly after the last
// frame it saw; events that aged out of the ring in the meantime are
// reported in a "dropped" frame rather than silently skipped.
func (s *server) streamEvents(w http.ResponseWriter, r *http.Request, job string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after uint64
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		v, err := strconv.ParseUint(lid, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "malformed Last-Event-ID: "+lid)
			return
		}
		after = v
	}
	sub := s.cfg.journal.Subscribe(after)
	defer sub.Close()
	// Subscribe-then-check: terminal events are journaled before the job
	// state flips, so a terminal state observed *after* subscribing means
	// the terminal event is already inside (or before) this subscription
	// window — the stream below can never miss it and block forever.
	terminalAlready := false
	if job != "" {
		if j, ok := s.lookup(job); ok {
			s.mu.Lock()
			st := j.state
			s.mu.Unlock()
			terminalAlready = st == stateDone || st == stateFailed || st == stateStalled
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(evs []events.ScanEvent, dropped uint64) (terminal bool) {
		if dropped > 0 {
			fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", dropped)
		}
		for _, ev := range evs {
			if job != "" && ev.Job != job {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			if job != "" && ev.Job == job && ev.Terminal() {
				terminal = true
			}
		}
		fl.Flush()
		return terminal
	}

	if terminalAlready {
		// Drain what the ring still holds and close; never block on a
		// job that will emit nothing more.
		evs, dropped := sub.Poll()
		write(evs, dropped)
		return
	}
	for {
		evs, dropped, err := sub.Next(r.Context())
		if err != nil {
			return // client went away
		}
		if write(evs, dropped) {
			return
		}
	}
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	data, voc, ok := s.readScanRequest(w, r)
	if !ok {
		return
	}
	if len(data) == 0 {
		httpError(w, http.StatusBadRequest, "empty firmware upload")
		return
	}
	s.enqueue(w, &job{kind: kindScan, data: data, vocab: voc})
}

// handleDiff accepts a differential scan: multipart/form-data with
// required "old" and "new" image parts plus the same optional "vocab"
// part as /v1/scan. The job flows through the same queue and runner as
// scans; its report endpoint returns a diff.Report.
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxUpload)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct != "multipart/form-data" {
		httpError(w, http.StatusBadRequest, "diff requires multipart/form-data with \"old\" and \"new\" image parts")
		return
	}
	if err := r.ParseMultipartForm(s.cfg.maxUpload); err != nil {
		httpError(w, http.StatusBadRequest, "malformed multipart upload: "+err.Error())
		return
	}
	defer func() { _ = r.MultipartForm.RemoveAll() }()
	oldData, err := formPart(r, "old")
	if err != nil {
		httpError(w, http.StatusBadRequest, "diff upload needs an \"old\" part: "+err.Error())
		return
	}
	newData, err := formPart(r, "new")
	if err != nil {
		httpError(w, http.StatusBadRequest, "diff upload needs a \"new\" part: "+err.Error())
		return
	}
	if len(oldData) == 0 || len(newData) == 0 {
		httpError(w, http.StatusBadRequest, "empty firmware upload")
		return
	}
	voc, ok := s.readVocabPart(w, r)
	if !ok {
		return
	}
	s.enqueue(w, &job{kind: kindDiff, data: oldData, newData: newData, vocab: voc})
}

// enqueue registers the job and offers it to the bounded queue — the
// shared accept path for scans and diffs. A full queue answers 429 with
// a Retry-After hint and forgets the job.
func (s *server) enqueue(w http.ResponseWriter, j *job) {
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("job-%06d", s.seq)
	j.state = stateQueued
	j.created = time.Now()
	s.jobs[j.id] = j
	s.mu.Unlock()

	// Sized before the send: the runner nils the payload fields as soon
	// as it picks the job up.
	bytes := len(j.data) + len(j.newData)
	select {
	case s.queue <- j:
		s.mu.Lock()
		s.jobsAccepted++
		s.mu.Unlock()
		s.cfg.journal.Emitter(j.id).Emit(events.ScanEvent{
			Type:  events.TypeJobQueued,
			Attrs: map[string]any{"kind": j.kind, "bytes": bytes},
		})
		if s.cfg.log != nil {
			s.cfg.log.Info("job accepted", "job", j.id, "kind", j.kind, "bytes", bytes)
		}
		writeJSONStatus(w, http.StatusAccepted, map[string]string{"id": j.id, "state": stateQueued})
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, "scan queue is full")
	}
}

// readScanRequest accepts the two upload forms of POST /v1/scan: the
// original raw-body firmware upload, and multipart/form-data with a
// required "firmware" part plus an optional "vocab" part carrying a
// JSON vocabulary spec that overrides the server default for this job
// only. Malformed vocabularies are rejected here — at accept time,
// with the vocab package's line- and field-precise error — so a bad
// spec costs 400, never a queued-then-failed job. On failure the
// response has been written and ok is false.
func (s *server) readScanRequest(w http.ResponseWriter, r *http.Request) (data []byte, voc *taint.Vocabulary, ok bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxUpload)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct != "multipart/form-data" {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusRequestEntityTooLarge, "firmware upload too large or unreadable")
			return nil, nil, false
		}
		return data, nil, true
	}
	if err := r.ParseMultipartForm(s.cfg.maxUpload); err != nil {
		httpError(w, http.StatusBadRequest, "malformed multipart upload: "+err.Error())
		return nil, nil, false
	}
	defer func() { _ = r.MultipartForm.RemoveAll() }()
	data, err := formPart(r, "firmware")
	if err != nil {
		httpError(w, http.StatusBadRequest, "multipart upload needs a \"firmware\" part: "+err.Error())
		return nil, nil, false
	}
	voc, ok = s.readVocabPart(w, r)
	if !ok {
		return nil, nil, false
	}
	return data, voc, true
}

// readVocabPart compiles the optional "vocab" part of a parsed
// multipart form. A missing part keeps the server default (nil, true);
// a malformed spec writes 400 and returns ok=false.
func (s *server) readVocabPart(w http.ResponseWriter, r *http.Request) (*taint.Vocabulary, bool) {
	vdata, err := formPart(r, "vocab")
	if err != nil {
		// No vocab part at all: the server default applies.
		return nil, true
	}
	spec, err := vocab.Parse(vdata, "vocab")
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid vocabulary: "+err.Error())
		return nil, false
	}
	v, err := taint.CompileVocabulary(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid vocabulary: "+err.Error())
		return nil, false
	}
	return v, true
}

// formPart reads one named part of a parsed multipart form, accepting
// both file parts (curl -F vocab=@file.json) and plain value fields.
func formPart(r *http.Request, name string) ([]byte, error) {
	if fhs := r.MultipartForm.File[name]; len(fhs) > 0 {
		f, err := fhs[0].Open()
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return io.ReadAll(f)
	}
	if vs := r.MultipartForm.Value[name]; len(vs) > 0 {
		return []byte(vs[0]), nil
	}
	return nil, fmt.Errorf("part %q missing", name)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, s.view(j))
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	state, errMsg, rep, drep := j.state, j.err, j.report, j.diffReport
	s.mu.Unlock()
	switch state {
	case stateDone, stateStalled:
		if drep != nil {
			writeJSON(w, drep)
			return
		}
		writeJSON(w, rep)
	case stateFailed:
		httpError(w, http.StatusUnprocessableEntity, "scan failed: "+errMsg)
	default:
		w.Header().Set("Retry-After", "2")
		httpError(w, http.StatusConflict, "job is "+state+"; report not ready")
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Consistent snapshot: every server-owned value — the per-state job
	// table, the queue depth, and the lifetime counters — is read in ONE
	// critical section, so a response can never show jobsDone ahead of
	// jobsStarted or a queue depth from a different instant.
	s.mu.Lock()
	byState := map[string]int{stateQueued: 0, stateRunning: 0, stateDone: 0, stateFailed: 0, stateStalled: 0}
	for _, j := range s.jobs {
		byState[j.state]++
	}
	m := metricsView{
		Jobs:         byState,
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		JobsAccepted: s.jobsAccepted,
		JobsStarted:  s.jobsStarted,
		JobsDone:     s.jobsDone,
		JobsFailed:   s.jobsFailed,
	}
	s.mu.Unlock()
	if s.cfg.cache != nil {
		st := s.cfg.cache.Stats()
		m.Cache = &st
	}

	// Mirror the snapshot into the registry so both exposition formats
	// report the same values. Registry handles are nil-safe: a server
	// without a registry mirrors into throwaway instruments.
	reg := s.cfg.metrics
	reg.Counter("dtaintd_jobs_accepted_total", "Scan jobs accepted into the queue.", nil).Store(m.JobsAccepted)
	reg.Counter("dtaintd_jobs_started_total", "Scan jobs the runner started.", nil).Store(m.JobsStarted)
	reg.Counter("dtaintd_jobs_done_total", "Scan jobs finished successfully.", nil).Store(m.JobsDone)
	reg.Counter("dtaintd_jobs_failed_total", "Scan jobs that failed.", nil).Store(m.JobsFailed)
	reg.Gauge("dtaintd_queue_depth", "Jobs waiting in the queue.", nil).Set(float64(m.QueueDepth))
	reg.Gauge("dtaintd_queue_cap", "Queue capacity.", nil).Set(float64(m.QueueCap))
	if m.Cache != nil {
		reg.Counter("dtaint_cache_hits_total", "Report cache hits.", nil).Store(m.Cache.Hits)
		reg.Counter("dtaint_cache_misses_total", "Report cache misses.", nil).Store(m.Cache.Misses)
		reg.Counter("dtaint_cache_evictions_total", "Report cache LRU evictions.", nil).Store(m.Cache.Evictions)
		reg.Gauge("dtaint_cache_entries", "Report cache in-memory entries.", nil).Set(float64(m.Cache.Entries))
	}

	// Content negotiation: Prometheus scrapers ask for text/plain, API
	// clients get the JSON view (registry snapshot included).
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
		return
	}
	m.Metrics = reg.Snapshot()
	writeJSON(w, m)
}

// wantsPrometheus reports whether the request prefers the Prometheus
// text exposition: an explicit text/plain Accept (what Prometheus
// sends) without an explicit application/json preference.
func wantsPrometheus(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

func (s *server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *server) view(j *job) jobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := jobView{
		ID:              j.id,
		Kind:            j.kind,
		State:           j.state,
		Error:           j.err,
		Created:         j.created.UTC().Format(time.RFC3339Nano),
		BinariesDone:    j.done,
		BinariesTotal:   j.total,
		BinariesStalled: j.stalled,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Command fwgen writes the synthetic firmware corpus to disk:
//
//	fwgen -out ./corpus                 # all six study images + openssl
//	fwgen -out ./corpus -product DIR-645
//	fwgen -out ./corpus -scale 0.25     # smaller filler, same vulnerabilities
//	fwgen -population                   # print the Figure 1 population summary
//
// Generation is deterministic: the same flags always produce the same
// bytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dtaint"
	"dtaint/internal/corpus"
	"dtaint/internal/emul"
)

func main() {
	var (
		out        = flag.String("out", "corpus", "output directory")
		product    = flag.String("product", "", "generate only this study product")
		scale      = flag.Float64("scale", 1.0, "corpus scale factor in (0, 1]")
		population = flag.Bool("population", false, "print the 6,529-image population summary instead")
	)
	flag.Parse()

	if err := run(*out, *product, *scale, *population); err != nil {
		fmt.Fprintln(os.Stderr, "fwgen:", err)
		os.Exit(1)
	}
}

func run(out, product string, scale float64, population bool) error {
	if population {
		e := emul.New()
		fmt.Print(emul.Summarize(e.Study(corpus.Population())))
		return nil
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	images := dtaint.StudyImages()
	for _, img := range images {
		if product != "" && img.Product != product {
			continue
		}
		data, err := dtaint.GenerateStudyFirmware(img.Product, scale)
		if err != nil {
			return err
		}
		name := filepath.Join(out, img.Product+".fwimg")
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes, %s %s, binary %s)\n",
			name, len(data), img.Vendor, img.Arch, img.BinaryPath)
	}
	if product == "" || product == "openssl" {
		raw, err := dtaint.GenerateOpenSSL(scale)
		if err != nil {
			return err
		}
		name := filepath.Join(out, "openssl.fwelf")
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", name, len(raw))
	}
	return nil
}

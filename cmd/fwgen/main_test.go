package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateOne(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "DIR-645", 0.05, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "DIR-645.fwimg")); err != nil {
		t.Fatal(err)
	}
	// Only the requested product is generated.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
}

func TestGenerateAll(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "", 0.02, false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Six study images + openssl.fwelf.
	if len(entries) != 7 {
		t.Fatalf("entries = %d, want 7", len(entries))
	}
}

func TestPopulationSummary(t *testing.T) {
	if err := run("", "", 1, true); err != nil {
		t.Fatal(err)
	}
}

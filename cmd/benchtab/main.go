// Command benchtab regenerates every table and figure of the paper's
// evaluation from the synthetic corpus:
//
//	benchtab -all               # everything
//	benchtab -fig1              # Figure 1: emulation success by year
//	benchtab -table1            # Table I: sources and sinks
//	benchtab -table2            # Table II: firmware summary
//	benchtab -table3            # Table III: detection results
//	benchtab -table4            # Table IV: previously-reported CVEs
//	benchtab -table5            # Table V: zero-days
//	benchtab -table6            # Table VI: CPU/memory usage
//	benchtab -table7            # Table VII: DTaint (parallel + sequential DDG) vs top-down baseline
//	benchtab -ablate            # feature ablations (alias, sse, structsim, value ranges)
//	benchtab -alias             # alias phase: Algorithm 1 (pairwise) vs SSE classes
//	benchtab -fleet             # fleet orchestrator: cold vs cached image scans
//	benchtab -corpus            # corpus-scale scans: summary store cold vs warm
//	benchtab -diff              # differential scan of a vendor re-release
//	benchtab -screen            # precision/recall over the screening corpus
//
// -corpus builds an overlap corpus (many images cycling a few binary
// variants that share a common module) and scans it four times — an
// uncached baseline, cold, warm, and a resummarize pass that replays
// analysis from the summary store alone. Findings must be bit-identical
// across all passes or the run fails. -corpus-scale sizes the corpus
// (1.0 = 200 images; 10 = 2,000), -corpus-workers the scan pool, and
// -min-corpus-speedup / -min-corpus-hits turn the warm-re-scan speedup
// and the replay hit rate into CI gates.
//
// -diff builds a version pair (a re-release mutating a few binaries at
// function granularity), fleet-scans the old version to warm the report
// cache and summary store, then diffs old→new and records the skip rate
// (analysis units replayed instead of re-analyzed) and the delta-cost
// ratio (diff wall over full-rescan wall). The diff's re-analysis count
// and finding classification are asserted against the generator's
// ground truth. -diff-scale sizes the pair, -diff-workers the pool, and
// -min-diff-skip turns the skip rate into a CI gate.
//
// -screen runs the 200-case screening corpus three times — full
// pipeline, with the interval value-range domain ablated, and with the
// SSE indirect-call resolver ablated — and prints the confusion rows.
// -min-precision/-min-recall make it a CI gate: the process exits
// non-zero when the full pipeline falls below either threshold
// (`make check` runs it with both set to 1).
//
// -alias benchmarks the alias-rewriting phase in isolation: the same
// raw definition pairs through Algorithm 1's pairwise scan and through
// the SSE class engine, on the study image and on a dense synthetic
// alias web, with the hash-cons table's size and hit rate recorded in
// the benchmark archive.
//
// -scale (default 0.25) shrinks the filler code of the synthetic binaries;
// detection results are scale-invariant, runtimes and size columns scale.
//
// Whenever a measured section runs (-table3/4/5, -table7, -fleet, or
// -all), the run is also archived as machine-readable JSON — schema
// "dtaint-bench/v1", documented in EXPERIMENTS.md — so benchmark runs
// can be diffed across commits. -bench-out picks the file name; by
// default it is BENCH_<UTC timestamp>.json in the working directory.
// -bench-out=off disables the archive.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtaint/internal/bench"
	"dtaint/internal/corpus"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		fig1     = flag.Bool("fig1", false, "Figure 1: emulation success by release year")
		table1   = flag.Bool("table1", false, "Table I: sources and sinks")
		table2   = flag.Bool("table2", false, "Table II: firmware summary")
		table3   = flag.Bool("table3", false, "Table III: detection results")
		table4   = flag.Bool("table4", false, "Table IV: previously-reported vulnerabilities")
		table5   = flag.Bool("table5", false, "Table V: zero-day vulnerabilities")
		table6   = flag.Bool("table6", false, "Table VI: resource usage")
		table7   = flag.Bool("table7", false, "Table VII: time cost vs the top-down baseline")
		ablate   = flag.Bool("ablate", false, "feature ablations")
		aliasX   = flag.Bool("alias", false, "alias phase: Algorithm 1 (pairwise) vs SSE classes")
		fleetX   = flag.Bool("fleet", false, "fleet orchestrator: cold vs cached image scans")
		screen   = flag.Bool("screen", false, "precision/recall over a randomized screening corpus")
		minPrec  = flag.Float64("min-precision", 0, "with -screen: exit non-zero when full-pipeline precision falls below this")
		minRec   = flag.Float64("min-recall", 0, "with -screen: exit non-zero when full-pipeline recall falls below this")
		scale    = flag.Float64("scale", 0.25, "corpus scale factor in (0, 1]")
		benchOut = flag.String("bench-out", "", "benchmark record file (empty = BENCH_<timestamp>.json, off = none)")

		corpusX = flag.Bool("corpus", false, "corpus-scale scans: summary store cold vs warm")
		cOpts   corpusOpts

		diffX = flag.Bool("diff", false, "differential scan of a vendor re-release version pair")
		dOpts diffOpts
	)
	flag.Float64Var(&cOpts.scale, "corpus-scale", 0.25, "with -corpus: overlap corpus scale (1.0 = 200 images)")
	flag.IntVar(&cOpts.workers, "corpus-workers", 0, "with -corpus: scan worker pool (0 = auto)")
	flag.Float64Var(&cOpts.minSpeedup, "min-corpus-speedup", 0, "with -corpus: exit non-zero when the warm re-scan speedup falls below this")
	flag.Float64Var(&cOpts.minHitRate, "min-corpus-hits", 0, "with -corpus: exit non-zero when the resummarize summary hit rate falls below this")
	flag.Float64Var(&dOpts.scale, "diff-scale", 0.25, "with -diff: version pair scale (1.0 = 12 binaries)")
	flag.IntVar(&dOpts.workers, "diff-workers", 0, "with -diff: analysis worker pool (0 = auto)")
	flag.Float64Var(&dOpts.minSkip, "min-diff-skip", 0, "with -diff: exit non-zero when the replay skip rate falls below this")
	flag.Parse()

	if err := run(*all, *fig1, *table1, *table2, *table3, *table4, *table5,
		*table6, *table7, *ablate, *aliasX, *fleetX, *corpusX, *diffX, *screen, *minPrec, *minRec, *scale, *benchOut, cOpts, dOpts); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

// corpusOpts bundles the -corpus knobs and gates.
type corpusOpts struct {
	scale      float64
	workers    int
	minSpeedup float64
	minHitRate float64
}

// diffOpts bundles the -diff knobs and gate.
type diffOpts struct {
	scale   float64
	workers int
	minSkip float64
}

func run(all, fig1, t1, t2, t3, t4, t5, t6, t7, ablate, aliasBench, fleetScan, corpusScan, diffScan, screen bool, minPrec, minRec, scale float64, benchOut string, cOpts corpusOpts, dOpts diffOpts) error {
	none := !(fig1 || t1 || t2 || t3 || t4 || t5 || t6 || t7 || ablate || aliasBench || fleetScan || corpusScan || diffScan || screen)
	if all || none {
		fig1, t1, t2, t3, t4, t5, t6, t7 = true, true, true, true, true, true, true, true
		ablate, aliasBench, fleetScan, corpusScan, diffScan, screen = true, true, true, true, true, true
	}
	w := os.Stdout
	rec := bench.NewRecord(scale)
	if fig1 {
		if err := bench.Figure1(w); err != nil {
			return err
		}
	}
	if t1 {
		if err := bench.Table1(w); err != nil {
			return err
		}
	}
	if t2 {
		if err := bench.Table2(w, scale); err != nil {
			return err
		}
	}
	if t3 || t4 || t5 {
		runs, err := bench.RunStudy(scale)
		if err != nil {
			return err
		}
		rec.AddStudy(runs)
		if t3 {
			if err := bench.Table3(w, runs); err != nil {
				return err
			}
		}
		if t4 {
			if err := bench.Table4(w, runs); err != nil {
				return err
			}
		}
		if t5 {
			if err := bench.Table5(w, runs); err != nil {
				return err
			}
		}
	}
	if t6 {
		if err := bench.Table6(w, scale); err != nil {
			return err
		}
	}
	if t7 {
		rows, err := bench.Table7(w, scale)
		if err != nil {
			return err
		}
		rec.AddTable7(rows)
	}
	if ablate {
		if err := bench.Ablations(w, scale); err != nil {
			return err
		}
	}
	if aliasBench {
		rows, err := bench.AliasBench(w, scale)
		if err != nil {
			return err
		}
		rec.Alias = rows
	}
	if fleetScan {
		fr, err := bench.Fleet(w, scale)
		if err != nil {
			return err
		}
		rec.Fleet = fr
	}
	if corpusScan {
		workers := cOpts.workers
		if workers <= 0 {
			workers = bench.Table7Workers()
		}
		cr, err := bench.Corpus(w, corpus.OverlapAt(cOpts.scale), workers)
		if err != nil {
			return err
		}
		rec.Corpus = cr
		if cr.WarmSpeedup < cOpts.minSpeedup {
			return fmt.Errorf("corpus warm speedup %.2fx below -min-corpus-speedup %.2f", cr.WarmSpeedup, cOpts.minSpeedup)
		}
		if cr.SummaryHitRate < cOpts.minHitRate {
			return fmt.Errorf("corpus summary hit rate %.3f below -min-corpus-hits %.3f", cr.SummaryHitRate, cOpts.minHitRate)
		}
	}
	if diffScan {
		workers := dOpts.workers
		if workers <= 0 {
			workers = bench.Table7Workers()
		}
		dr, err := bench.Diff(w, corpus.VersionPairAt(dOpts.scale), workers)
		if err != nil {
			return err
		}
		rec.Diff = dr
		if dr.SkipRate < dOpts.minSkip {
			return fmt.Errorf("diff skip rate %.3f below -min-diff-skip %.3f", dr.SkipRate, dOpts.minSkip)
		}
	}
	if screen {
		stats, err := bench.Screening(w, 200)
		if err != nil {
			return err
		}
		if stats.Precision < minPrec {
			return fmt.Errorf("screening precision %.3f below -min-precision %.3f", stats.Precision, minPrec)
		}
		if stats.Recall < minRec {
			return fmt.Errorf("screening recall %.3f below -min-recall %.3f", stats.Recall, minRec)
		}
	}
	if benchOut != "off" && !rec.Empty() {
		path, err := rec.WriteFile(benchOut)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote benchmark record to %s\n", path)
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSource writes one fixture file into a temp module tree and lints it.
func lintSource(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintTree([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func wantRule(t *testing.T, findings []string, rule string, n int) {
	t.Helper()
	got := 0
	for _, f := range findings {
		if strings.Contains(f, rule+":") {
			got++
		}
	}
	if got != n {
		t.Fatalf("want %d %s finding(s), got %d: %v", n, rule, got, findings)
	}
}

func TestUnorderedMapRangeFlagged(t *testing.T) {
	findings := lintSource(t, `package p

func leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	wantRule(t, findings, "unordered-map-range", 1)
}

func TestCollectThenSortClean(t *testing.T) {
	findings := lintSource(t, `package p

import "sort"

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	wantRule(t, findings, "unordered-map-range", 0)
}

func TestOrderInsensitiveBodiesClean(t *testing.T) {
	findings := lintSource(t, `package p

func aggregate(m map[string]int) (int, bool) {
	sum, seen := 0, map[string]bool{}
	for k, v := range m {
		sum += v
		seen[k] = true
		if v < 0 {
			return 0, false
		}
	}
	return sum, true
}

func merge(dst, src map[string]int) {
	for k, v := range src {
		if old, ok := dst[k]; ok {
			v = min(v, old)
		}
		dst[k] = v
	}
}

func tally(m map[string]string) (hit, miss int) {
	for _, v := range m {
		switch v {
		case "hit":
			hit++
		case "miss":
			miss++
		}
	}
	return hit, miss
}

func leakThroughSwitch(m map[string]string) []string {
	var out []string
	for k, v := range m {
		switch v {
		case "keep":
			out = append(out, k)
		}
	}
	return out
}
`)
	wantRule(t, findings, "unordered-map-range", 1)
}

func TestMakeAndLiteralMapsTracked(t *testing.T) {
	findings := lintSource(t, `package p

func f() []int {
	m := make(map[int]int)
	lit := map[string]bool{"a": true}
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for k := range lit {
		_ = k
		out = append(out, 1)
	}
	return out
}
`)
	wantRule(t, findings, "unordered-map-range", 2)
}

func TestStructFieldMapTracked(t *testing.T) {
	findings := lintSource(t, `package p

type prog struct {
	callers map[string][]string
}

func (p *prog) dump(w interface{ Write([]byte) (int, error) }) {
	for k := range p.callers {
		w.Write([]byte(k))
	}
}
`)
	wantRule(t, findings, "unordered-map-range", 1)
}

func TestSliceRangeClean(t *testing.T) {
	findings := lintSource(t, `package p

func f(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`)
	wantRule(t, findings, "unordered-map-range", 0)
}

func TestIgnoreDirective(t *testing.T) {
	findings := lintSource(t, `package p

func leak(m map[string]int) []string {
	var out []string
	//dtaintlint:ignore diagnostic output only, order does not matter
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	wantRule(t, findings, "unordered-map-range", 0)
}

func TestGuardedObsCallFlagged(t *testing.T) {
	findings := lintSource(t, `package p

import "dtaint/internal/obs"

type opts struct {
	Metrics *obs.Registry
}

func record(o opts, n int) {
	if o.Metrics != nil {
		o.Metrics.Counter("n", "help", nil).Add(uint64(n))
	}
}

func snapshot(o opts) []obs.MetricSnapshot {
	if reg := o.Metrics; reg != nil {
		return reg.Snapshot()
	}
	return nil
}
`)
	wantRule(t, findings, "guarded-obs-call", 2)
}

func TestUnguardedObsCallClean(t *testing.T) {
	findings := lintSource(t, `package p

import "dtaint/internal/obs"

type opts struct {
	Metrics *obs.Registry
}

func record(o opts, n int) {
	o.Metrics.Counter("n", "help", nil).Add(uint64(n))
}
`)
	wantRule(t, findings, "guarded-obs-call", 0)
}

func TestGuardedEventsCallFlagged(t *testing.T) {
	findings := lintSource(t, `package p

import "dtaint/internal/obs/events"

type opts struct {
	Events *events.Emitter
}

func record(o opts, done, total int) {
	if o.Events != nil {
		o.Events.Progress("binaries", done, total)
	}
	em := events.NewJournal(0).Emitter("job")
	if em != nil {
		em.Emit(events.ScanEvent{})
	}
}
`)
	wantRule(t, findings, "guarded-obs-call", 2)
}

func TestEarlyReturnObsGuardFlagged(t *testing.T) {
	findings := lintSource(t, `package p

import (
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
)

func record(reg *obs.Registry, n int) {
	if reg == nil {
		return
	}
	reg.Counter("n", "help", nil).Add(uint64(n))
}

func emit(em *events.Emitter) {
	if em == nil {
		return
	}
	em.Emit(events.ScanEvent{})
}
`)
	wantRule(t, findings, "guarded-obs-call", 2)
}

func TestEarlyReturnObsGuardExemptions(t *testing.T) {
	// Guards returning a value, doing more than returning, or guarding
	// non-obs values are all legitimate; so are waived lines.
	findings := lintSource(t, `package p

import "dtaint/internal/obs"

func snapshot(reg *obs.Registry) []obs.MetricSnapshot {
	if reg == nil {
		return nil
	}
	return reg.Snapshot()
}

func record(reg *obs.Registry, expensive func() uint64) {
	//dtaintlint:ignore skips expensive attribute construction
	if reg == nil {
		return
	}
	reg.Counter("n", "help", nil).Add(expensive())
}

type cache struct{}

func (c *cache) warm() {}

func f(c *cache) {
	if c == nil {
		return
	}
	c.warm()
}
`)
	wantRule(t, findings, "guarded-obs-call", 0)
}

func TestNonObsNilGuardClean(t *testing.T) {
	findings := lintSource(t, `package p

type cache struct{}

func (c *cache) Stats() int { return 0 }

func f(c *cache) int {
	if c != nil {
		return c.Stats()
	}
	return 0
}
`)
	wantRule(t, findings, "guarded-obs-call", 0)
}

// TestRepositoryIsClean runs the linter over the real tree: the
// determinism and nil-safe-handle contracts must hold everywhere.
func TestRepositoryIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lintTree([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

func TestGobImportFlagged(t *testing.T) {
	findings := lintSource(t, `package p

import "encoding/gob"

var _ = gob.Register
`)
	wantRule(t, findings, "unversioned-serialization", 1)
}

func TestAdHocAnalysisSerializationFlagged(t *testing.T) {
	findings := lintSource(t, `package p

import (
	"encoding/json"

	"dtaint/internal/symexec"
	"dtaint/internal/taint"
)

func dump(sum *symexec.Summary, findings []taint.Finding) ([]byte, error) {
	if _, err := json.Marshal(findings); err != nil {
		return nil, err
	}
	return json.Marshal(sum)
}
`)
	wantRule(t, findings, "unversioned-serialization", 2)
}

func TestEncoderOfAnalysisValueFlagged(t *testing.T) {
	findings := lintSource(t, `package p

import (
	"encoding/json"
	"io"

	"dtaint/internal/vrange"
)

func dump(w io.Writer) error {
	iv := vrange.Interval{Lo: 1, Hi: 2}
	return json.NewEncoder(w).Encode(iv)
}
`)
	wantRule(t, findings, "unversioned-serialization", 1)
}

func TestNonAnalysisSerializationClean(t *testing.T) {
	findings := lintSource(t, `package p

import "encoding/json"

type report struct{ N int }

func dump(r *report) ([]byte, error) {
	return json.Marshal(r)
}
`)
	wantRule(t, findings, "unversioned-serialization", 0)
}

func TestSerializationIgnoreDirective(t *testing.T) {
	findings := lintSource(t, `package p

import (
	"encoding/json"

	"dtaint/internal/taint"
)

func dump(fs []taint.Finding) ([]byte, error) {
	//dtaintlint:ignore debug-only dump, never persisted
	return json.Marshal(fs)
}
`)
	wantRule(t, findings, "unversioned-serialization", 0)
}

// lintSourceAt writes one fixture into dir/<rel>/fixture.go so rules
// scoped by package path (rule 4 targets internal/taint) see it.
func lintSourceAt(t *testing.T, rel, src string) []string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), rel)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintTree([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestHardcodedVocabNameFlagged(t *testing.T) {
	src := `package taint

func special(callee string) bool {
	return callee == "strcpy" || callee == "system"
}
`
	findings := lintSourceAt(t, "internal/taint", src)
	wantRule(t, findings, "hardcoded-vocab-name", 2)
	// The same literals outside the engine are nobody's business.
	wantRule(t, lintSourceAt(t, "internal/corpus", src), "hardcoded-vocab-name", 0)
}

func TestHardcodedVocabNameExemptions(t *testing.T) {
	// Import paths, non-vocab literals, and waived lines are all clean.
	findings := lintSourceAt(t, "internal/taint", `package taint

import "strings"

const loopSink = "loop"

func f(s string) bool {
	//dtaintlint:ignore exercising the waiver path
	if s == "memcpy" {
		return true
	}
	return strings.Contains(s, "atoi_")
}
`)
	wantRule(t, findings, "hardcoded-vocab-name", 0)
}

func TestSSEKeyIdentityFlagged(t *testing.T) {
	src := `package p

import "dtaint/internal/sse"

type index struct {
	byKey map[string]*sse.Node
}

func same(a, b interface{ Key() string }) bool {
	return a.Key() == b.Key()
}

func lookup(m map[string]bool, e interface{ Key() string }) bool {
	return m[e.Key()]
}
`
	findings := lintSource(t, src)
	wantRule(t, findings, "sse-key-identity", 3)
}

func TestSSEKeyIdentityScopedToImporters(t *testing.T) {
	// The same patterns without the sse import carry no identity
	// contract: expr keys are the normal currency elsewhere.
	findings := lintSource(t, `package p

func same(a, b interface{ Key() string }) bool {
	return a.Key() == b.Key()
}

func lookup(m map[string]bool, e interface{ Key() string }) bool {
	return m[e.Key()]
}
`)
	wantRule(t, findings, "sse-key-identity", 0)
}

func TestSSEKeyIdentityInSSEPackage(t *testing.T) {
	// Inside package sse the bare Node/Path names are in scope, and the
	// waiver directive clears a deliberate exception.
	findings := lintSource(t, `package sse

type Node struct{}

type table struct {
	slots map[string]*Node //dtaintlint:ignore sse-key-identity exercising the waiver path
}

type index struct {
	bad map[string][]*Node
}
`)
	wantRule(t, findings, "sse-key-identity", 1)
}

// Command dtaintlint enforces five repository-specific contracts that
// go vet cannot check:
//
//  1. unordered-map-range — the determinism contract. Findings, reports,
//     and benchmark tables must be bit-identical across runs and worker
//     counts, so code may not let Go's randomized map iteration order
//     escape. A `for k := range m` over a map is flagged unless the loop
//     is order-insensitive (it only writes keyed entries, accumulates
//     with commutative updates, or deletes) or the surrounding block
//     sorts what the loop collected (the collect-then-sort idiom).
//
//  2. guarded-obs-call — the nil-safe-handle contract. Every handle in
//     internal/obs (Registry, Tracer, Span, Counter, Gauge, Histogram)
//     and internal/obs/events (Journal, Emitter, Watchdog, Sub) is
//     nil-safe by design: a nil registry hands out live throwaway
//     instruments, a nil tracer produces no-op spans, and a nil emitter
//     swallows events. Wrapping an instrumentation call in
//     `if h != nil { h.Observe(...) }` — or guarding a whole recording
//     function with `if h == nil { return }` — is therefore dead weight
//     that rots into inconsistently-guarded telemetry; the guard must
//     go.
//
//  3. unversioned-serialization — the wire-format contract. Analysis
//     values (internal/symexec, taint, expr, vrange) are persisted only
//     through internal/sumstore's versioned, checksummed wire format;
//     a store written by one build must be a clean cache miss — never a
//     silently-wrong decode — under the next. encoding/gob writes no
//     format version at all and is flagged on import; ad-hoc
//     json/xml/Encode serialization of an analysis type outside
//     internal/sumstore is flagged at the call.
//
//  4. hardcoded-vocab-name — the declarative-vocabulary contract. The
//     taint engine (internal/taint) dispatches sources, sinks,
//     sanitizers, and propagation models from the compiled vocabulary
//     (internal/vocab); a string literal naming a vocabulary function
//     ("strcpy", "system", ...) in engine code is a hard-coded special
//     case that a custom -vocab spec cannot override. Declare the
//     behavior in the vocabulary spec instead.
//
//  5. sse-key-identity — the interned-identity contract. Inside
//     internal/sse, canonical equality IS pointer equality: two
//     canonically-equal access paths intern to the same *sse.Node. Code
//     in that package or importing it that rebuilds identity out of key
//     strings — comparing two .Key() results with ==/!=, declaring a
//     map[string] that holds interned nodes or paths, or indexing a map
//     by a .Key() result — defeats the hash-cons table (string
//     comparisons where a pointer compare suffices) and can silently
//     diverge from the union-find's view. Intern both sides and compare
//     or key by the node pointer instead.
//
// Usage:
//
//	dtaintlint [dir ...]        # default: the whole module tree
//
// A deliberate exception is suppressed with a trailing or preceding
// comment `//dtaintlint:ignore <reason>`; the reason is mandatory so
// the waiver is reviewable. Test files and testdata are not linted.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dtaint/internal/vocab"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dtaintlint [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	findings, err := lintTree(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtaintlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dtaintlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintTree parses every non-test package under the roots and runs both
// rules, returning findings sorted by position.
func lintTree(roots []string) ([]string, error) {
	fset := token.NewFileSet()
	byDir := map[string][]*ast.File{}
	var dirs []string
	for _, root := range roots {
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			name := info.Name()
			if info.IsDir() {
				if name != "." && name != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			dir := filepath.Dir(path)
			if _, ok := byDir[dir]; !ok {
				dirs = append(dirs, dir)
			}
			byDir[dir] = append(byDir[dir], f)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)

	world := newWorld()
	for _, dir := range dirs {
		world.addPackage(dir, byDir[dir])
	}
	var findings []string
	for _, dir := range dirs {
		findings = append(findings, world.lintPackage(fset, dir, byDir[dir])...)
	}
	sort.Strings(findings)
	return findings, nil
}

// ---------------------------------------------------------------------------
// Syntactic type knowledge. The linter runs without go/types (the module
// has no dependencies and the source importer predates modules), so it
// tracks just enough declared structure to answer two questions: "is
// this expression a map?" and "is this expression an obs handle?".

type varInfo struct {
	isMap      bool
	isObs      bool   // a handle type declared in internal/obs
	structName string // qualified struct type ("pkg.Name") for field lookup
}

type pkgInfo struct {
	name     string             // declared package name
	mapTypes map[string]bool    // named types whose underlying type is a map
	obsPkg   bool               // this IS internal/obs or internal/obs/events
	structs  map[string]fields  // struct name -> field types
	globals  map[string]varInfo // package-level vars
	results  map[string]varInfo // single-result function name -> result
}

type fields map[string]varInfo

type world struct {
	pkgs      map[string]*pkgInfo // by directory
	byPkgName map[string]*pkgInfo // by declared name (for qualified lookups)
}

func newWorld() *world {
	return &world{pkgs: map[string]*pkgInfo{}, byPkgName: map[string]*pkgInfo{}}
}

func (w *world) addPackage(dir string, files []*ast.File) {
	p := &pkgInfo{
		mapTypes: map[string]bool{},
		structs:  map[string]fields{},
		globals:  map[string]varInfo{},
		results:  map[string]varInfo{},
	}
	for _, f := range files {
		p.name = f.Name.Name
	}
	p.obsPkg = p.name == "obs" || p.name == "events"
	w.pkgs[dir] = p
	w.byPkgName[p.name] = p

	// Pass 1: named types, so pass 2 can resolve them in field types.
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if _, isMap := ts.Type.(*ast.MapType); isMap {
					p.mapTypes[ts.Name.Name] = true
				}
			}
		}
	}
	// Pass 2: struct fields, package vars, single-result functions.
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if st, ok := s.Type.(*ast.StructType); ok {
							fs := fields{}
							for _, fld := range st.Fields.List {
								vi := w.typeKind(p, fld.Type)
								for _, n := range fld.Names {
									fs[n.Name] = vi
								}
							}
							p.structs[s.Name.Name] = fs
						}
					case *ast.ValueSpec:
						if s.Type != nil {
							vi := w.typeKind(p, s.Type)
							for _, n := range s.Names {
								p.globals[n.Name] = vi
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil && d.Type.Results != nil && len(d.Type.Results.List) == 1 && len(d.Type.Results.List[0].Names) <= 1 {
					p.results[d.Name.Name] = w.typeKind(p, d.Type.Results.List[0].Type)
				}
			}
		}
	}
}

// typeKind classifies a declared type expression.
func (w *world) typeKind(p *pkgInfo, t ast.Expr) varInfo {
	switch x := t.(type) {
	case *ast.MapType:
		return varInfo{isMap: true}
	case *ast.StarExpr:
		return w.typeKind(p, x.X)
	case *ast.ParenExpr:
		return w.typeKind(p, x.X)
	case *ast.Ident:
		vi := varInfo{isMap: p.mapTypes[x.Name], isObs: p.obsPkg && (isObsHandle(x.Name) || isEventsHandle(x.Name))}
		if _, ok := p.structs[x.Name]; ok {
			vi.structName = p.name + "." + x.Name
		}
		return vi
	case *ast.SelectorExpr:
		pkgName, ok := x.X.(*ast.Ident)
		if !ok {
			return varInfo{}
		}
		if pkgName.Name == "obs" && isObsHandle(x.Sel.Name) {
			return varInfo{isObs: true, isMap: x.Sel.Name == "Labels"}
		}
		if pkgName.Name == "events" && isEventsHandle(x.Sel.Name) {
			return varInfo{isObs: true}
		}
		if other, ok := w.byPkgName[pkgName.Name]; ok {
			vi := varInfo{isMap: other.mapTypes[x.Sel.Name]}
			if _, ok := other.structs[x.Sel.Name]; ok {
				vi.structName = other.name + "." + x.Sel.Name
			}
			return vi
		}
	}
	return varInfo{}
}

// isObsHandle reports whether the named internal/obs type is one of the
// nil-safe instrumentation handles.
func isObsHandle(name string) bool {
	switch name {
	case "Registry", "Tracer", "Span", "Counter", "Gauge", "Histogram", "Labels":
		return true
	}
	return false
}

// isEventsHandle reports whether the named internal/obs/events type is
// one of the nil-safe telemetry handles.
func isEventsHandle(name string) bool {
	switch name {
	case "Journal", "Emitter", "Watchdog", "Sub":
		return true
	}
	return false
}

// obsMethods are the instrumentation entry points of the nil-safe
// handles; a nil-guard around a call to one of these is rule 2's target
// even when the receiver's type cannot be resolved syntactically.
var obsMethods = map[string]bool{
	"Inc": true, "Add": true, "Store": true, "Set": true, "Observe": true,
	"Counter": true, "Gauge": true, "Histogram": true, "Snapshot": true,
	"WriteJSON": true, "WritePrometheus": true, "WriteChromeTrace": true,
	"StartSpan": true, "SetAttr": true, "OnSpanStart": true, "OnSpanEnd": true,
	"Emit": true, "Progress": true, "ProgressDecile": true, "WithPath": true,
	"Emitter": true,
}

// ---------------------------------------------------------------------------
// Per-package linting.

func (w *world) lintPackage(fset *token.FileSet, dir string, files []*ast.File) []string {
	p := w.pkgs[dir]
	// internal/sumstore IS the versioned serialization layer; rule 3
	// exempts it.
	allowSer := strings.Contains(filepath.ToSlash(dir), "internal/sumstore")
	// Rule 4 applies only to the taint engine itself.
	taintPkg := strings.Contains(filepath.ToSlash(dir), "internal/taint")
	var out []string
	for _, f := range files {
		importsObs := false
		for _, imp := range f.Imports {
			if strings.Contains(imp.Path.Value, "internal/obs") {
				importsObs = true
			}
		}
		ignored := directiveLines(fset, f)
		lf := &linter{w: w, p: p, fset: fset, ignored: ignored, importsObs: importsObs}
		if !allowSer {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"encoding/gob"` {
					lf.report(imp.Pos(), "unversioned-serialization",
						"encoding/gob writes no format version; persist analysis values through internal/sumstore's versioned wire format (//dtaintlint:ignore <reason> to waive)")
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			env := lf.collectEnv(fd)
			lf.lintBlock(fd.Body, env)
			if !allowSer {
				lf.lintSerialization(fd)
			}
		}
		if taintPkg {
			lf.lintVocabLiterals(f)
		}
		if sseScope(f) {
			lf.lintSSEIdentity(f)
		}
		out = append(out, lf.findings...)
	}
	return out
}

// directiveLines returns the lines carrying a //dtaintlint:ignore
// directive; a finding on that line or the next is waived.
func directiveLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//dtaintlint:ignore") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

type linter struct {
	w          *world
	p          *pkgInfo
	fset       *token.FileSet
	ignored    map[int]bool
	importsObs bool
	findings   []string
}

func (l *linter) report(pos token.Pos, rule, msg string) {
	position := l.fset.Position(pos)
	if l.ignored[position.Line] || l.ignored[position.Line-1] {
		return
	}
	l.findings = append(l.findings, fmt.Sprintf("%s:%d:%d: %s: %s",
		position.Filename, position.Line, position.Column, rule, msg))
}

// collectEnv gathers the variables visible in a function whose map or
// obs nature is syntactically evident: the receiver, parameters, and
// every local declaration or := assignment in the body. The scan is
// flow-insensitive; Go's declare-before-use keeps that honest.
func (l *linter) collectEnv(fd *ast.FuncDecl) map[string]varInfo {
	env := map[string]varInfo{}
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			vi := l.w.typeKind(l.p, f.Type)
			for _, n := range f.Names {
				env[n.Name] = vi
			}
		}
	}
	bind(fd.Recv)
	bind(fd.Type.Params)
	bind(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil {
					continue
				}
				vi := l.w.typeKind(l.p, vs.Type)
				for _, n := range vs.Names {
					env[n.Name] = vi
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
				return true
			}
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if vi := l.exprInfo(s.Rhs[i], env); vi != (varInfo{}) {
					env[id.Name] = vi
				}
			}
		}
		return true
	})
	return env
}

// exprInfo classifies an expression using the collected environment and
// the package's declared structure, following selector chains through
// known struct fields (s.cfg.metrics → server.config.metrics).
func (l *linter) exprInfo(e ast.Expr, env map[string]varInfo) varInfo {
	switch x := e.(type) {
	case *ast.Ident:
		if vi, ok := env[x.Name]; ok {
			return vi
		}
		return l.p.globals[x.Name]
	case *ast.ParenExpr:
		return l.exprInfo(x.X, env)
	case *ast.StarExpr:
		return l.exprInfo(x.X, env)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return l.exprInfo(x.X, env)
		}
	case *ast.CompositeLit:
		if x.Type != nil {
			return l.w.typeKind(l.p, x.Type)
		}
	case *ast.SelectorExpr:
		base := l.exprInfo(x.X, env)
		if base.structName != "" {
			dot := strings.IndexByte(base.structName, '.')
			owner := l.w.byPkgName[base.structName[:dot]]
			if owner != nil {
				if fs, ok := owner.structs[base.structName[dot+1:]]; ok {
					return fs[x.Sel.Name]
				}
			}
			return varInfo{}
		}
		// Package-qualified name: obs.X or another package's global.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, shadowed := env[id.Name]; !shadowed {
				if id.Name == "obs" && strings.HasPrefix(x.Sel.Name, "New") {
					return varInfo{isObs: isObsHandle(strings.TrimPrefix(x.Sel.Name, "New"))}
				}
				if id.Name == "events" {
					if x.Sel.Name == "StartWatchdog" {
						return varInfo{isObs: true}
					}
					if strings.HasPrefix(x.Sel.Name, "New") {
						return varInfo{isObs: isEventsHandle(strings.TrimPrefix(x.Sel.Name, "New"))}
					}
				}
				if other, ok := l.w.byPkgName[id.Name]; ok {
					if vi, ok := other.globals[x.Sel.Name]; ok {
						return vi
					}
					if vi, ok := other.results[x.Sel.Name]; ok {
						return vi
					}
				}
			}
		}
	case *ast.CallExpr:
		switch fn := x.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "make" && len(x.Args) > 0 {
				return l.w.typeKind(l.p, x.Args[0])
			}
			return l.p.results[fn.Name]
		case *ast.SelectorExpr:
			// obs.NewRegistry() and friends, or pkg.Func().
			return l.exprInfo(fn, env)
		}
	}
	return varInfo{}
}

// ---------------------------------------------------------------------------
// Rule 1: unordered map iteration.

// lintBlock walks a block, flagging map ranges that leak iteration
// order and nil-guarded obs calls. Nested blocks are walked with the
// same (flow-insensitive) environment.
func (l *linter) lintBlock(b *ast.BlockStmt, env map[string]varInfo) {
	for i, st := range b.List {
		l.lintStmt(st, b.List[i+1:], env)
	}
}

func (l *linter) lintStmt(st ast.Stmt, rest []ast.Stmt, env map[string]varInfo) {
	switch s := st.(type) {
	case *ast.RangeStmt:
		if l.exprInfo(s.X, env).isMap && !orderInsensitiveBody(s.Body, rangeLocals(s)) && !sortedAfter(rest) {
			l.report(s.For, "unordered-map-range",
				fmt.Sprintf("iteration order of map %s escapes; sort the keys first or make the loop order-insensitive (//dtaintlint:ignore <reason> to waive)",
					types.ExprString(s.X)))
		}
		l.lintBlock(s.Body, env)
	case *ast.IfStmt:
		l.lintGuardedObs(s, env)
		l.lintBlock(s.Body, env)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			l.lintBlock(e, env)
		case *ast.IfStmt:
			l.lintStmt(e, nil, env)
		}
	case *ast.ForStmt:
		l.lintBlock(s.Body, env)
	case *ast.BlockStmt:
		l.lintBlock(s, env)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			for i, cs := range c.(*ast.CaseClause).Body {
				l.lintStmt(cs, c.(*ast.CaseClause).Body[i+1:], env)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			for i, cs := range c.(*ast.CaseClause).Body {
				l.lintStmt(cs, c.(*ast.CaseClause).Body[i+1:], env)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			for i, cs := range c.(*ast.CommClause).Body {
				l.lintStmt(cs, c.(*ast.CommClause).Body[i+1:], env)
			}
		}
	case *ast.GoStmt:
		l.lintCallBody(s.Call, env)
	case *ast.DeferStmt:
		l.lintCallBody(s.Call, env)
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			l.lintCallBody(c, env)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if fl, ok := r.(*ast.FuncLit); ok {
				l.lintBlock(fl.Body, env)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if fl, ok := r.(*ast.FuncLit); ok {
				l.lintBlock(fl.Body, env)
			}
		}
	}
}

// lintCallBody descends into function-literal arguments (worker bodies
// passed to go/defer or helpers) so their loops are linted too.
func (l *linter) lintCallBody(c *ast.CallExpr, env map[string]varInfo) {
	if fl, ok := c.Fun.(*ast.FuncLit); ok {
		l.lintBlock(fl.Body, env)
	}
	for _, a := range c.Args {
		if fl, ok := a.(*ast.FuncLit); ok {
			l.lintBlock(fl.Body, env)
		}
	}
}

// sortedAfter reports whether a later statement in the same block sorts
// a slice — the collect-then-sort idiom that makes a preceding map
// range deterministic.
func sortedAfter(rest []ast.Stmt) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// rangeLocals seeds the loop-local binding set with the range's key and
// value variables; rebinding those between iterations cannot leak order.
func rangeLocals(s *ast.RangeStmt) map[string]bool {
	locals := map[string]bool{}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			locals[id.Name] = true
		}
	}
	return locals
}

// orderInsensitiveBody reports whether every statement in the loop body
// commutes across iterations: keyed writes, commutative accumulation,
// rebinding of loop-local variables, deletes, per-entry sorts,
// early-exit returns of constants, and switches whose case bodies all
// commute. locals holds names bound fresh each
// iteration (the range variables and := definitions inside the body).
func orderInsensitiveBody(b *ast.BlockStmt, locals map[string]bool) bool {
	for _, st := range b.List {
		if !orderInsensitiveStmt(st, locals) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(st ast.Stmt, locals map[string]bool) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			for i, lhs := range s.Lhs {
				switch x := lhs.(type) {
				case *ast.IndexExpr:
					// m2[k] = v: keyed by the element, not visit order.
				case *ast.Ident:
					if x.Name == "_" {
						continue
					}
					if s.Tok == token.DEFINE || locals[x.Name] {
						locals[x.Name] = true // fresh or per-iteration binding
						continue
					}
					// x = <constant> is idempotent (found = true).
					if i < len(s.Rhs) && !constantExpr(s.Rhs[i]) {
						return false
					}
				default:
					return false
				}
			}
			return true
		}
		return true // +=, |=, ... : commutative accumulation
	case *ast.IncDecStmt:
		return true
	case *ast.DeclStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		c, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fn := c.Fun.(type) {
		case *ast.Ident:
			return fn.Name == "delete"
		case *ast.SelectorExpr:
			// sort.Strings(m[k]) and friends: sorting a keyed entry
			// commutes across iterations.
			if id, ok := fn.X.(*ast.Ident); ok {
				return id.Name == "sort" || id.Name == "slices"
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !constantExpr(r) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(s.Init, locals) {
			return false
		}
		if s.Body != nil && !orderInsensitiveBody(s.Body, locals) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitiveBody(e, locals)
		case *ast.IfStmt:
			return orderInsensitiveStmt(e, locals)
		}
		return false
	case *ast.RangeStmt:
		inner := rangeLocals(s)
		for k := range locals {
			inner[k] = true
		}
		return orderInsensitiveBody(s.Body, inner)
	case *ast.ForStmt:
		return orderInsensitiveBody(s.Body, locals)
	case *ast.BlockStmt:
		return orderInsensitiveBody(s, locals)
	case *ast.SwitchStmt:
		// A switch commutes when every case body does; the tag and
		// case expressions are only read.
		if s.Init != nil && !orderInsensitiveStmt(s.Init, locals) {
			return false
		}
		for _, cl := range s.Body.List {
			for _, st := range cl.(*ast.CaseClause).Body {
				if !orderInsensitiveStmt(st, locals) {
					return false
				}
			}
		}
		return true
	}
	return false
}

// constantExpr reports whether an expression is a literal constant, so
// assigning or returning it is the same no matter which iteration does.
func constantExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return x.Name == "true" || x.Name == "false" || x.Name == "nil"
	case *ast.UnaryExpr:
		return constantExpr(x.X)
	}
	return false
}

// ---------------------------------------------------------------------------
// Rule 2: nil-guarded obs calls.

// lintGuardedObs flags `if h != nil { h.M(...) }` where h is (or looks
// like) a nil-safe internal/obs handle, and the early-return variant
// `if h == nil { return }` that guards a whole recording function.
func (l *linter) lintGuardedObs(s *ast.IfStmt, env map[string]varInfo) {
	if l.p.obsPkg {
		return // the obs package implements the nil-safety it promises
	}
	l.lintEarlyReturnObsGuard(s, env)
	// The guard's init statement can bind the handle (if reg := x; reg != nil).
	if s.Init != nil {
		if as, ok := s.Init.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			env = copyEnv(env)
			for i, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if vi := l.exprInfo(as.Rhs[i], env); vi != (varInfo{}) {
						env[id.Name] = vi
					}
				}
			}
		}
	}
	guarded := map[string]bool{}
	ast.Inspect(s.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.NEQ {
			return true
		}
		if isNil(be.Y) {
			guarded[types.ExprString(be.X)] = true
		} else if isNil(be.X) {
			guarded[types.ExprString(be.Y)] = true
		}
		return true
	})
	if len(guarded) == 0 {
		return
	}
	ast.Inspect(s.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := types.ExprString(sel.X)
		if !guarded[recv] {
			return true
		}
		vi := l.exprInfo(sel.X, env)
		if vi.isObs || (l.importsObs && obsMethods[sel.Sel.Name]) {
			l.report(call.Pos(), "guarded-obs-call",
				fmt.Sprintf("%s is nil-checked before calling %s.%s, but obs handles are nil-safe by contract; drop the guard",
					recv, recv, sel.Sel.Name))
		}
		return true
	})
}

// lintEarlyReturnObsGuard flags `if h == nil { return }` where h is a
// nil-safe obs handle and the body is a single bare return: the only
// purpose of such a guard is protecting subsequent instrumentation
// calls, which are nil-safe by contract. Guards that return a value or
// do other work are left alone (they may be skipping real computation);
// a deliberate skip of expensive attribute construction is waived with
// the usual //dtaintlint:ignore directive.
func (l *linter) lintEarlyReturnObsGuard(s *ast.IfStmt, env map[string]varInfo) {
	be, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return
	}
	var handle ast.Expr
	switch {
	case isNil(be.Y):
		handle = be.X
	case isNil(be.X):
		handle = be.Y
	default:
		return
	}
	if len(s.Body.List) != 1 {
		return
	}
	ret, ok := s.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 0 {
		return
	}
	if !l.exprInfo(handle, env).isObs {
		return
	}
	name := types.ExprString(handle)
	l.report(s.If, "guarded-obs-call",
		fmt.Sprintf("early return when %s is nil, but obs handles are nil-safe by contract; drop the guard", name))
}

// ---------------------------------------------------------------------------
// Rule 4: hard-coded vocabulary names in the taint engine.

var vocabNames map[string]bool

// defaultVocabNames is the set of function names the embedded default
// vocabulary declares — the literals rule 4 hunts for in engine code.
func defaultVocabNames() map[string]bool {
	if vocabNames == nil {
		spec := vocab.Default()
		vocabNames = make(map[string]bool, len(spec.Functions))
		for i := range spec.Functions {
			vocabNames[spec.Functions[i].Name] = true
		}
	}
	return vocabNames
}

// lintVocabLiterals flags string literals naming a default-vocabulary
// function inside internal/taint. The engine must dispatch on the
// compiled vocabulary, never on a spelled-out function name — a
// hard-coded "strcpy" is a special case no custom -vocab spec can
// override. Import paths are exempt; waivers use the usual directive.
func (l *linter) lintVocabLiterals(f *ast.File) {
	names := defaultVocabNames()
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil || !names[s] {
				return true
			}
			l.report(lit.Pos(), "hardcoded-vocab-name",
				fmt.Sprintf("string literal %q names a vocabulary function; dispatch on the compiled vocabulary instead of the name (//dtaintlint:ignore <reason> to waive)", s))
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// Rule 5: string-keyed identity over interned SSE nodes.

// sseScope reports whether rule 5 applies to a file: the sse package
// itself and every file importing it carry the identity contract.
func sseScope(f *ast.File) bool {
	if f.Name.Name == "sse" {
		return true
	}
	for _, imp := range f.Imports {
		if imp.Path.Value == `"dtaint/internal/sse"` {
			return true
		}
	}
	return false
}

// lintSSEIdentity flags code that rebuilds canonical-expression identity
// out of key strings where internal/sse's pointer identity is the
// contract: comparing two .Key() results, declaring a string-keyed map
// that holds interned nodes or paths, and indexing a map by a .Key()
// result.
func (l *linter) lintSSEIdentity(f *ast.File) {
	inSSE := f.Name.Name == "sse"
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if (x.Op == token.EQL || x.Op == token.NEQ) && isKeyCall(x.X) && isKeyCall(x.Y) {
				l.report(x.OpPos, "sse-key-identity",
					"canonical expressions compared through .Key() strings; intern both sides and compare node pointers with == (//dtaintlint:ignore <reason> to waive)")
			}
		case *ast.MapType:
			if isStringType(x.Key) && mentionsSSENode(x.Value, inSSE) {
				l.report(x.Pos(), "sse-key-identity",
					"string-keyed map holds interned sse nodes; key by the node pointer — canonical equality is pointer identity (//dtaintlint:ignore <reason> to waive)")
			}
		case *ast.IndexExpr:
			if keyCallInside(x.Index) {
				l.report(x.Index.Pos(), "sse-key-identity",
					"map indexed by a .Key() string; intern the expression and key by the node pointer (//dtaintlint:ignore <reason> to waive)")
			}
		}
		return true
	})
}

// isKeyCall reports whether e is a zero-argument .Key() call.
func isKeyCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Key"
}

// keyCallInside reports whether a .Key() call appears anywhere in the
// expression (covers concatenations like a.Key()+"="+b.Key()).
func keyCallInside(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok && isKeyCall(x) {
			found = true
		}
		return !found
	})
	return found
}

func isStringType(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "string"
}

// mentionsSSENode reports whether a type expression names sse.Node or
// sse.Path (Node/Path inside package sse), looking through pointers,
// slices, arrays, and nested maps.
func mentionsSSENode(t ast.Expr, inSSE bool) bool {
	switch x := t.(type) {
	case *ast.StarExpr:
		return mentionsSSENode(x.X, inSSE)
	case *ast.ParenExpr:
		return mentionsSSENode(x.X, inSSE)
	case *ast.ArrayType:
		return mentionsSSENode(x.Elt, inSSE)
	case *ast.MapType:
		return mentionsSSENode(x.Key, inSSE) || mentionsSSENode(x.Value, inSSE)
	case *ast.Ident:
		return inSSE && (x.Name == "Node" || x.Name == "Path")
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && id.Name == "sse" {
			return x.Sel.Name == "Node" || x.Sel.Name == "Path"
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func copyEnv(env map[string]varInfo) map[string]varInfo {
	out := make(map[string]varInfo, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Rule 3: unversioned serialization of analysis types.

// analysisTypePkgs are the packages whose values flow through the
// summary store's versioned wire format; persisting them any other way
// is rule 3's target.
var analysisTypePkgs = map[string]bool{
	"symexec": true, "taint": true, "expr": true, "vrange": true,
}

// analysisTypeName returns the qualified name ("taint.Finding") when the
// type expression names an analysis-package type, looking through
// pointers, slices, arrays, and maps.
func analysisTypeName(t ast.Expr) string {
	switch x := t.(type) {
	case *ast.StarExpr:
		return analysisTypeName(x.X)
	case *ast.ParenExpr:
		return analysisTypeName(x.X)
	case *ast.ArrayType:
		return analysisTypeName(x.Elt)
	case *ast.MapType:
		if n := analysisTypeName(x.Value); n != "" {
			return n
		}
		return analysisTypeName(x.Key)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && analysisTypePkgs[id.Name] {
			return id.Name + "." + x.Sel.Name
		}
	}
	return ""
}

// lintSerialization flags Marshal/Encode calls whose argument is an
// analysis-package value. Analysis types are tracked through their
// declared spellings (receiver, parameters, results, var declarations,
// and := from composite literals); the scan is flow-insensitive like
// the rest of the linter.
func (l *linter) lintSerialization(fd *ast.FuncDecl) {
	env := map[string]string{}
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if n := analysisTypeName(f.Type); n != "" {
				for _, nm := range f.Names {
					env[nm.Name] = n
				}
			}
		}
	}
	bind(fd.Recv)
	bind(fd.Type.Params)
	bind(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil {
					continue
				}
				if name := analysisTypeName(vs.Type); name != "" {
					for _, nm := range vs.Names {
						env[nm.Name] = name
					}
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if name := serializedArgType(s.Rhs[i], env); name != "" {
					env[id.Name] = name
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			l.checkSerializeCall(call, env)
		}
		return true
	})
}

// checkSerializeCall reports a serialization call whose first argument
// is an analysis-package value: json.Marshal/MarshalIndent and
// xml.Marshal at package level, and Encode/EncodeValue on any encoder
// value (json.NewEncoder, gob.NewEncoder, ...).
func (l *linter) checkSerializeCall(call *ast.CallExpr, env map[string]string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	switch sel.Sel.Name {
	case "Marshal", "MarshalIndent":
		id, ok := sel.X.(*ast.Ident)
		if !ok || (id.Name != "json" && id.Name != "xml") {
			return
		}
	case "Encode", "EncodeValue":
	default:
		return
	}
	if name := serializedArgType(call.Args[0], env); name != "" {
		l.report(call.Pos(), "unversioned-serialization",
			fmt.Sprintf("ad-hoc serialization of analysis type %s; persist analysis values through internal/sumstore's versioned wire format (//dtaintlint:ignore <reason> to waive)", name))
	}
}

// serializedArgType resolves a serialization argument to a qualified
// analysis type name, or "" when it is not one.
func serializedArgType(e ast.Expr, env map[string]string) string {
	switch x := e.(type) {
	case *ast.Ident:
		return env[x.Name]
	case *ast.ParenExpr:
		return serializedArgType(x.X, env)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return serializedArgType(x.X, env)
		}
	case *ast.CompositeLit:
		if x.Type != nil {
			return analysisTypeName(x.Type)
		}
	}
	return ""
}

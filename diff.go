package dtaint

import (
	"context"
	"time"

	"dtaint/internal/diff"
)

// This file is the public face of differential firmware scanning
// (internal/diff): the "CI for firmware" workload, where each nightly
// vendor re-release is scanned at a cost proportional to its delta and
// findings are tracked as new / fixed / persisting across versions.

// DiffBinaryStatus classifies how one rootfs binary relates across the
// two image versions.
type DiffBinaryStatus string

// Binary pairing outcomes.
const (
	// DiffUnchanged: same path, same bytes — never re-analyzed.
	DiffUnchanged DiffBinaryStatus = "unchanged"
	// DiffChanged: same path, different bytes.
	DiffChanged DiffBinaryStatus = "changed"
	// DiffAdded: present only in the new image.
	DiffAdded DiffBinaryStatus = "added"
	// DiffRemoved: present only in the old image.
	DiffRemoved DiffBinaryStatus = "removed"
	// DiffMoved: identical bytes at a different rootfs path.
	DiffMoved DiffBinaryStatus = "moved"
)

// DiffFindingStatus classifies one finding across versions.
type DiffFindingStatus string

// Cross-version finding outcomes.
const (
	// FindingNew exists in the new version only — the CI signal worth
	// breaking a build for.
	FindingNew DiffFindingStatus = "new"
	// FindingFixed existed in the old version only.
	FindingFixed DiffFindingStatus = "fixed"
	// FindingPersisting exists in both versions (tolerating function
	// renames and relocation).
	FindingPersisting DiffFindingStatus = "persisting"
)

// DiffSource records where one side's analysis came from: "cache"
// (replayed from the fleet report cache), "fresh" (analyzed in this
// run), or "none" (unavailable).
type DiffSource string

// DiffFinding is one deduplicated vulnerability with its cross-version
// classification. New and persisting findings carry the new version's
// location; fixed findings the old version's.
type DiffFinding struct {
	Status   DiffFindingStatus `json:"status"`
	Class    Class             `json:"class"`
	Sink     string            `json:"sink"`
	SinkFunc string            `json:"sinkFunc"`
	SinkAddr uint32            `json:"sinkAddr"`
	Source   string            `json:"source"`
	// OldFunc is set on persisting findings whose containing function
	// was renamed: the old version's name for SinkFunc.
	OldFunc string `json:"oldFunc,omitempty"`
	// Paths is the number of vulnerable paths sharing this finding.
	Paths int `json:"paths"`
}

// DiffBinary is one binary pair's entry in a DiffReport.
type DiffBinary struct {
	// Path is the rootfs path in the new image (old image for removed
	// binaries); OldPath is set when it differs (moved binaries).
	Path      string           `json:"path"`
	OldPath   string           `json:"oldPath,omitempty"`
	Status    DiffBinaryStatus `json:"status"`
	OldSHA256 string           `json:"oldSha256,omitempty"`
	NewSHA256 string           `json:"newSha256,omitempty"`
	OldSource DiffSource       `json:"oldSource,omitempty"`
	NewSource DiffSource       `json:"newSource,omitempty"`
	// Error describes a failed analysis; such pairs carry no findings.
	Error string `json:"error,omitempty"`
	// Duration is the fresh-analysis wall clock this run spent on the
	// pair (zero when everything replayed).
	Duration time.Duration `json:"durationNanos"`

	// Function pairing statistics (changed pairs only): of FuncsTotal
	// functions in the new version, FuncsExact paired on identical code
	// (FuncsRenamed of them under a different name) and FuncsSimilar by
	// layout/callgraph similarity.
	FuncsTotal   int `json:"funcsTotal,omitempty"`
	FuncsExact   int `json:"funcsExact,omitempty"`
	FuncsRenamed int `json:"funcsRenamed,omitempty"`
	FuncsSimilar int `json:"funcsSimilar,omitempty"`

	// SummaryHits/SummaryMisses attribute fresh analysis cost to the
	// function-summary store: hits are functions replayed from summaries
	// an earlier version already wrote.
	SummaryHits   int `json:"summaryHits,omitempty"`
	SummaryMisses int `json:"summaryMisses,omitempty"`

	// New/Fixed/Persisting count the pair's findings by status.
	New        int `json:"new"`
	Fixed      int `json:"fixed"`
	Persisting int `json:"persisting"`
	// Findings lists them: new first, then fixed, then persisting.
	Findings []DiffFinding `json:"findings,omitempty"`
}

// DiffImage identifies one side of the diff.
type DiffImage struct {
	Vendor     string `json:"vendor"`
	Product    string `json:"product"`
	Version    string `json:"version"`
	Year       int    `json:"year"`
	SHA256     string `json:"sha256"`
	Candidates int    `json:"candidates"`
}

// DiffReport is the result of diffing two firmware images. Its semantic
// content — pairing, hashes, finding classifications — is identical for
// any worker count and with the summary store on or off; only the cost
// attribution (durations, replay provenance, store counters) varies
// with configuration.
type DiffReport struct {
	Old DiffImage `json:"old"`
	New DiffImage `json:"new"`

	// Pairing totals over Binaries.
	Unchanged int `json:"unchanged"`
	Changed   int `json:"changed"`
	Added     int `json:"added"`
	Removed   int `json:"removed"`
	Moved     int `json:"moved"`

	// Replayed/Reanalyzed partition the distinct binary contents the
	// diff needed analyses for: served from the report cache vs analyzed
	// in this run. Failed counts pairs with an analysis error.
	Replayed   int `json:"replayed"`
	Reanalyzed int `json:"reanalyzed"`
	Failed     int `json:"failed"`
	// SummaryHitRate is the function-summary store hit rate over this
	// run's fresh analyses.
	SummaryHitRate float64 `json:"summaryHitRate"`

	// Finding totals across all pairs.
	NewFindings        int `json:"newFindings"`
	FixedFindings      int `json:"fixedFindings"`
	PersistingFindings int `json:"persistingFindings"`

	// Binaries lists every pair in rootfs path order.
	Binaries []DiffBinary `json:"binaries"`

	Workers int           `json:"workers"`
	Wall    time.Duration `json:"wallNanos"`
	// Cache snapshots the report cache's lifetime counters (zero when
	// the diff ran uncached).
	Cache CacheStats `json:"cache"`
}

// ScanFirmwareDiff diffs two firmware images: binaries are paired by
// rootfs path and content hash, unchanged ones replay from the fleet
// report cache (supply one with WithFleetCache — a prior
// ScanFirmwareFleet of the old image warms it), changed ones are
// re-analyzed with unchanged functions replaying from the summary store
// (WithFleetSummaryStore), and findings are matched across versions so
// each classifies as new, fixed, or persisting. The Analyzer's own
// options apply to every analysis, and the same FleetOption set as
// ScanFirmwareFleet configures workers, timeout, caches, and filters.
func (a *Analyzer) ScanFirmwareDiff(ctx context.Context, oldImage, newImage []byte, opts ...FleetOption) (*DiffReport, error) {
	var cfg fleetConfig
	for _, o := range opts {
		o(&cfg)
	}
	dopts := diff.Options{
		Workers:          cfg.workers,
		PerBinaryTimeout: cfg.timeout,
		Analysis:         a.opts,
		FilterTag:        cfg.filterTag,
		PathFilter:       cfg.pathFilter,
		Progress:         cfg.progress,
	}
	if cfg.cache != nil {
		dopts.Cache = cfg.cache.c
	}
	if cfg.sumStore != nil {
		dopts.SummaryStore = cfg.sumStore.s
	}
	rep, err := diff.Diff(ctx, oldImage, newImage, dopts)
	if err != nil {
		return nil, err
	}
	return publicDiffReport(rep), nil
}

func publicDiffReport(r *diff.Report) *DiffReport {
	out := &DiffReport{
		Old:                publicDiffImage(r.Old),
		New:                publicDiffImage(r.New),
		Unchanged:          r.Unchanged,
		Changed:            r.Changed,
		Added:              r.Added,
		Removed:            r.Removed,
		Moved:              r.Moved,
		Replayed:           r.Replayed,
		Reanalyzed:         r.Reanalyzed,
		Failed:             r.Failed,
		SummaryHitRate:     r.SummaryHitRate,
		NewFindings:        r.NewFindings,
		FixedFindings:      r.FixedFindings,
		PersistingFindings: r.PersistingFindings,
		Workers:            r.Workers,
		Wall:               r.Wall,
		Cache: CacheStats{
			Hits:      r.Cache.Hits,
			DiskHits:  r.Cache.DiskHits,
			Misses:    r.Cache.Misses,
			Evictions: r.Cache.Evictions,
			Entries:   r.Cache.Entries,
		},
	}
	for _, b := range r.Binaries {
		pb := DiffBinary{
			Path:          b.Path,
			OldPath:       b.OldPath,
			Status:        DiffBinaryStatus(b.Status),
			OldSHA256:     b.OldSHA256,
			NewSHA256:     b.NewSHA256,
			OldSource:     DiffSource(b.OldSource),
			NewSource:     DiffSource(b.NewSource),
			Error:         b.Error,
			Duration:      b.Duration,
			FuncsTotal:    b.FuncsTotal,
			FuncsExact:    b.FuncsExact,
			FuncsRenamed:  b.FuncsRenamed,
			FuncsSimilar:  b.FuncsSimilar,
			SummaryHits:   b.SummaryHits,
			SummaryMisses: b.SummaryMisses,
			New:           b.New,
			Fixed:         b.Fixed,
			Persisting:    b.Persisting,
		}
		for _, fd := range b.Findings {
			pb.Findings = append(pb.Findings, DiffFinding{
				Status:   DiffFindingStatus(fd.Status),
				Class:    Class(fd.Finding.Class),
				Sink:     fd.Finding.Sink,
				SinkFunc: fd.Finding.SinkFunc,
				SinkAddr: fd.Finding.SinkAddr,
				Source:   fd.Finding.Source,
				OldFunc:  fd.OldFunc,
				Paths:    fd.Paths,
			})
		}
		out.Binaries = append(out.Binaries, pb)
	}
	return out
}

func publicDiffImage(id diff.ImageIdentity) DiffImage {
	return DiffImage{
		Vendor:     id.Vendor,
		Product:    id.Product,
		Version:    id.Version,
		Year:       id.Year,
		SHA256:     id.SHA256,
		Candidates: id.Candidates,
	}
}
